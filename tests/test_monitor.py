"""Tests for the monitoring hardware (paper §3.3)."""

from repro import Machine, Phase, Read, Write
from repro.monitor import HistogramTable, Monitor, TraceMemory

from conftest import small_config


def test_histogram_record_and_totals():
    h = HistogramTable("t")
    h.record("LV", "READ")
    h.record("LV", "READ")
    h.record("GI", "READ_EX", n=3)
    assert h.total() == 5
    assert h.total(row="LV") == 2
    assert h.total(col="READ_EX") == 3
    assert h.cells()[("GI", "READ_EX")] == 3


def test_histogram_overflow_swaps_halves_and_interrupts():
    fired = []
    h = HistogramTable("t", overflow_limit=3, on_overflow=fired.append)
    for _ in range(7):
        h.record("LV", "READ")
    assert h.overflows == 2
    assert len(fired) == 2
    assert h.total() == 7          # nothing lost across swaps


def test_histogram_render_contains_rows_and_columns():
    h = HistogramTable("states x txns")
    h.record("LV", "READ")
    h.record("GI*", "UPGRADE")
    text = h.render()
    assert "LV" in text and "GI*" in text
    assert "READ" in text and "UPGRADE" in text


def test_trace_memory_bounded():
    t = TraceMemory(capacity=4)
    for i in range(10):
        t.record(("mem", 0, "READ", i, 0))
    assert len(t) == 4
    assert t.recent(2)[-1][3] == 9


def test_monitor_records_memory_and_nc_transactions():
    m = Machine(small_config())
    mon = Monitor()
    m.attach_monitor(mon)
    local = m.allocate(4096, placement="local:0")
    remote = m.allocate(4096, placement="local:1")

    def prog():
        yield Write(local.addr(0), 1)
        yield Read(remote.addr(0))

    m.run({0: prog()})
    assert mon.coherence_histogram.total() >= 2   # local write + remote read
    assert mon.nc_histogram.total() >= 1          # the NC saw the remote read
    assert len(mon.trace) >= 3


def test_monitor_address_range_filter():
    m = Machine(small_config())
    r1 = m.allocate(4096, placement="local:0")
    r2 = m.allocate(4096, placement="local:0")
    lo = min(r2.pages)
    mon = Monitor(address_range=(lo, lo + 4096))
    m.attach_monitor(mon)

    def prog():
        yield Write(r1.addr(0), 1)   # outside the window
        yield Write(r2.addr(0), 2)   # inside

    m.run({0: prog()})
    assert mon.coherence_histogram.total() == 1


def test_monitor_phase_attribution():
    m = Machine(small_config())
    mon = Monitor()
    m.attach_monitor(mon)
    r = m.allocate(8192, placement="local:0")

    def prog():
        yield Phase(1)
        yield Write(r.addr(0), 1)
        yield Phase(2)
        yield Write(r.addr(4096), 1)

    m.run({0: prog()})
    assert mon.phase_table.total(col=1) == 1
    assert mon.phase_table.total(col=2) == 1


def test_nc_txns_feed_originator_and_phase_tables():
    """NC transactions must attribute originator and phase exactly like
    memory transactions do (§3.3 parity fix)."""
    m = Machine(small_config())
    mon = Monitor()
    m.attach_monitor(mon)
    remote = m.allocate(4096, placement="local:1")

    def prog():
        yield Phase(7)
        yield Read(remote.addr(0))

    m.run({0: prog()})
    assert mon.nc_histogram.total() >= 1
    # the remote read passed through S0's NC; cpu 0 must appear as its
    # originator and phase 7 must be attributed
    assert mon.originator_table.total(col=0) >= 2  # memory + NC records
    assert mon.phase_table.total(col=7) >= 2


def test_monitor_report_includes_all_tables():
    m = Machine(small_config())
    mon = Monitor()
    m.attach_monitor(mon)
    remote = m.allocate(4096, placement="local:1")

    def prog():
        yield Phase(3)
        yield Write(remote.addr(0), 1)

    m.run({0: prog()})
    text = mon.report()
    assert "mem state x txn" in text
    assert "nc state x txn" in text
    assert "txn x originator" in text
    assert "txn x phase" in text


def test_monitor_locked_states_distinguished():
    """The §3.3.3 table has locked variants of each state; contention on a
    line must record at least one '*' row."""
    m = Machine(small_config())
    mon = Monitor()
    m.attach_monitor(mon)
    r = m.allocate(64, placement="local:2")
    n = m.config.num_cpus

    def prog(cid):
        for i in range(4):
            yield Write(r.addr(0), cid * 10 + i)

    m.run({c: prog(c) for c in range(n)})
    rows = {row for row, _ in mon.coherence_histogram.cells()}
    assert any(row.endswith("*") for row in rows), rows
