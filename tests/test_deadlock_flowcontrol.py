"""Deadlock avoidance and flow control (paper §2.4): sinkable/nonsinkable
separation, the flush-storm stress, and genuine-deadlock detection."""

import pytest

from repro import Barrier, DeadlockError, Machine, Read, Write
from repro.workloads.synthetic import FlushStorm, HotSpot

from conftest import small_config


def test_genuine_deadlock_is_detected():
    """A barrier whose participant set includes a CPU that never runs must
    be reported as a deadlock, not silently dropped."""
    m = Machine(small_config())

    def prog():
        yield Barrier(0, (0, 1))   # cpu 1 never starts a program

    with pytest.raises(DeadlockError):
        m.run({0: prog()})


def test_blocked_cpu_reported_with_address():
    """The deadlock report names the blocked CPU (debuggability)."""
    m = Machine(small_config())

    def prog():
        yield Barrier(0, (0, 3))

    with pytest.raises(DeadlockError, match="barrier"):
        m.run({0: prog()})


def test_flush_storm_completes_and_loses_nothing():
    """§2.4: 'many processors simultaneously flush modified data from their
    caches to remote memory' — the stress the flow control must survive.
    The workload asserts every flushed value internally."""
    m = Machine(small_config())
    FlushStorm(lines_per_cpu=24).run(m)
    s = m.nc_stats()
    assert s.get("wb_forwarded", 0) >= 1 or True  # data verified by workload


def test_hotspot_contention_completes():
    """All CPUs hammering one station's memory: heavy NACK/retry traffic
    must still converge."""
    m = Machine(small_config())
    HotSpot(ops=80).run(m)
    assert m.memory_stats().get("nacks", 0) >= 0  # ran to completion


def test_nonsink_limit_one_still_completes():
    """Even with a single nonsinkable credit per station, the protocol makes
    progress (credits recycle on delivery)."""
    cfg = small_config(nonsink_limit=1)
    m = Machine(cfg)
    r = m.allocate(4096, placement="local:3")
    n = cfg.num_cpus

    def prog(cid):
        for i in range(6):
            v = yield Read(r.addr(((cid + i) % 8) * 8))
        yield Write(r.addr(cid * 8), cid)

    m.run({c: prog(c) for c in range(n)})
    for c in range(n):
        assert m.read_word(r.addr(c * 8)) == c


def test_ring_input_fifo_backpressure_counted():
    """Tiny ring input FIFOs: the halt mechanism engages under load and the
    run still completes correctly."""
    cfg = small_config(ring_in_fifo_capacity=4)
    m = Machine(cfg)
    r = m.allocate(8192, placement="local:0")
    n = cfg.num_cpus

    def prog(cid):
        for i in range(24):
            yield Read(r.addr(((cid * 24 + i) % 128) * 8))

    m.run({c: prog(c) for c in range(n)})
    halts = sum(ring.halts.value for ring in m.net.local_rings)
    # with capacity 4 under this load the backpressure generally fires;
    # correctness (completion) is the hard requirement either way
    assert halts >= 0


def test_full_machine_backpressure_past_high_water_drains_cleanly():
    """Regression for the 64-processor configuration: all 64 CPUs burst
    reads at one home station through deliberately small ring input FIFOs,
    driving them past their high-water marks.  The halt/resume protocol
    must (1) engage, (2) stop the upstream link *before* any FIFO
    overflows, and (3) release every halted link again so the run drains
    completely instead of deadlocking."""
    from repro import MachineConfig

    cfg = MachineConfig.prototype()
    # 8 entries (high-water 6) is the tightest FIFO this burst survives:
    # the two-entry margin just covers the packets already committed on
    # the upstream link when the halt engages
    cfg.ring_in_fifo_capacity = 8
    m = Machine(cfg)
    r = m.allocate(64 * 64, placement="local:0")
    n = cfg.num_cpus
    assert n == 64

    def prog(cid):
        total = 0.0
        for i in range(10):
            total += yield Read(r.addr(((cid * 10 + i) * 8) % (64 * 64)))
        yield Write(r.addr(cid * 8), cid + 1)

    # must complete without DeadlockError despite the tiny FIFOs
    m.run({c: prog(c) for c in range(n)})

    halts = sum(ring.halts.value for ring in m.net.local_rings)
    if m.net.central_ring is not None:
        halts += m.net.central_ring.halts.value
    assert halts > 0, "backpressure never engaged at P=64 with capacity-6 FIFOs"

    for st in m.stations:
        fifo = st.ring_interface.in_fifo
        # high-water fired (the halt path is what kept it below capacity)
        assert fifo.max_depth <= fifo.capacity, f"{fifo.name} overflowed"
        # every halted link resumed: nothing may remain queued at the end
        assert fifo.empty, f"{fifo.name} failed to drain"

    # data integrity end to end under sustained backpressure
    for c in range(n):
        assert m.read_word(r.addr(c * 8)) == c + 1
