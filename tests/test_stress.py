"""Randomized whole-machine stress with end-state coherence verification.

Each seed generates deterministic per-CPU op streams (reads, writes, atomic
increments, compute) over a small shared region, runs to completion, and
then checks global invariants:

* every atomic counter reached exactly its expected value;
* at most one dirty copy of any line exists machine-wide;
* every readable cached copy of a line agrees with the machine-wide
  authoritative value (no stale survivors).
"""

import random

import pytest

from repro import AtomicRMW, Barrier, Compute, Machine, MachineConfig, Read, Write
from repro.core.states import CacheState
from repro.interconnect.routing import Geometry

from conftest import small_config


def check_final_coherence(m: Machine, region, nwords: int) -> None:
    cfg = m.config
    lines = sorted({cfg.line_addr(region.addr(i * 8)) for i in range(nwords)})
    for la in lines:
        dirty = [
            (cpu.cpu_id, line)
            for cpu in m.cpus
            if (line := cpu.l2.lookup(la, touch=False)) is not None
            and line.state is CacheState.DIRTY
        ]
        assert len(dirty) <= 1, f"line {la:#x} has {len(dirty)} dirty owners"
        authoritative = m.read_word(la)
        for cpu in m.cpus:
            line = cpu.l2.lookup(la, touch=False)
            if line is not None and line.state.readable:
                assert line.data[0] == authoritative, (
                    f"P{cpu.cpu_id} holds stale {line.data[0]} != "
                    f"{authoritative} for {la:#x}"
                )
        for st in m.stations:
            ncl = st.nc.array.probe(la)
            if ncl is not None and ncl.data_valid:
                assert ncl.data[0] == authoritative, (
                    f"S{st.station_id} NC stale for {la:#x}"
                )


def _stress(seed: int, cfg, ops: int = 120) -> None:
    rng = random.Random(seed)
    m = Machine(cfg)
    ncpus = cfg.num_cpus
    nwords = 64
    arr = m.allocate(nwords * 8)
    counters = m.allocate(8 * 8, placement="local:0")
    allc = tuple(range(ncpus))
    expected = [0]

    def prog(cid, seq):
        for kind, a, b in seq:
            if kind == "r":
                yield Read(arr.addr(a * 8))
            elif kind == "w":
                yield Write(arr.addr(a * 8), b)
            elif kind == "rmw":
                yield AtomicRMW(counters.addr(a * 8), lambda v: v + 1)
            else:
                yield Compute(b)
        yield Barrier(0, allc)
        if cid == 0:
            total = 0
            for i in range(8):
                v = yield Read(counters.addr(i * 8))
                total += v
            assert total == expected[0], (total, expected[0])

    programs = {}
    for c in range(ncpus):
        seq = []
        for _ in range(ops):
            roll = rng.random()
            if roll < 0.45:
                seq.append(("r", rng.randrange(nwords), 0))
            elif roll < 0.75:
                seq.append(("w", rng.randrange(nwords), rng.randrange(10000)))
            elif roll < 0.9:
                seq.append(("rmw", rng.randrange(8), 0))
                expected[0] += 1
            else:
                seq.append(("c", 0, rng.randrange(40)))
        programs[c] = prog(c, seq)
    m.run(programs)
    check_final_coherence(m, arr, nwords)


@pytest.mark.parametrize("seed", range(6))
def test_stress_default_geometry(seed):
    _stress(seed, small_config())


def test_stress_single_ring():
    cfg = MachineConfig(
        geometry=Geometry((4,), processors_per_station=2),
        l1_size_bytes=1024, l2_size_bytes=8192, nc_size_bytes=32768,
        station_mem_bytes=1 << 22,
    )
    _stress(100, cfg)


def test_stress_four_cpu_stations():
    cfg = MachineConfig(
        geometry=Geometry((2, 2), processors_per_station=4),
        l1_size_bytes=1024, l2_size_bytes=8192, nc_size_bytes=32768,
        station_mem_bytes=1 << 22,
    )
    _stress(101, cfg)


def test_stress_tiny_nc_forces_ejections():
    """A two-line NC thrashes constantly; correctness must hold through the
    ejection / false-remote machinery."""
    cfg = small_config(nc_size_bytes=2 * 64)
    _stress(7, cfg, ops=80)


def test_stress_batch_one():
    _stress(3, small_config(cpu_batch=1), ops=60)


def test_stress_no_sc_locking():
    _stress(5, small_config(sc_locking=False))


def test_stress_exact_sharers():
    _stress(6, small_config(exact_sharers=True))


def test_stress_nc_bypass():
    _stress(8, small_config(nc_enabled=False), ops=80)


def test_stress_pessimistic_upgrade():
    _stress(9, small_config(optimistic_upgrade=False))
