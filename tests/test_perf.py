"""The perf harness: run records, the on-disk cache, and the sweep runner."""

from __future__ import annotations

import json

from repro.perf import (
    RunCache,
    RunRecord,
    SweepPoint,
    config_fingerprint,
    point_key,
    run_sweep,
)
from repro.system.config import MachineConfig


# ----------------------------------------------------------------------
# records
# ----------------------------------------------------------------------
def test_run_record_json_roundtrip():
    rec = RunRecord(
        workload="fft",
        nprocs=4,
        cpus=(0, 1, 4, 5),
        parallel_time_ns=123.5,
        time_ticks=999,
        events=42,
        nc_stats={"hits": 7},
        ring_delays={"send": 1.5},
    )
    back = RunRecord.from_json(json.loads(json.dumps(rec.to_json())))
    assert back == rec
    assert back.cpus == (0, 1, 4, 5)


def test_deterministic_view_drops_wall_clock_fields():
    rec = RunRecord(workload="fft", nprocs=1, wall_s=1.0, events_per_sec=5.0)
    view = rec.deterministic_view()
    assert "wall_s" not in view and "events_per_sec" not in view
    assert view["workload"] == "fft"


# ----------------------------------------------------------------------
# cache keys
# ----------------------------------------------------------------------
def test_point_key_sensitive_to_inputs():
    cfg = MachineConfig.prototype()
    base = point_key(cfg, "fft", 4)
    assert point_key(cfg, "fft", 8) != base
    assert point_key(cfg, "radix", 4) != base
    assert point_key(cfg, "fft", 4, cpus=(0, 4)) != base
    assert point_key(cfg, "fft", 4, variant="nc_off") != base

    other = MachineConfig.prototype()
    other.nc_enabled = False
    assert config_fingerprint(other) != config_fingerprint(cfg)
    assert point_key(other, "fft", 4) != base
    # same inputs -> same key (stability across processes/sessions)
    assert point_key(MachineConfig.prototype(), "fft", 4) == base


def test_cache_put_get_clear(tmp_path):
    cache = RunCache(root=tmp_path / "cache")
    rec = RunRecord(workload="fft", nprocs=2, events=10)
    assert cache.get("k1") is None
    cache.put("k1", rec)
    assert cache.get("k1") == rec
    assert cache.clear() == 1
    assert cache.get("k1") is None


def test_cache_disabled_is_inert(tmp_path):
    cache = RunCache(root=tmp_path / "cache", enabled=False)
    cache.put("k1", RunRecord(workload="fft", nprocs=1))
    assert cache.get("k1") is None
    assert not (tmp_path / "cache").exists()


def test_cache_ignores_corrupt_entries(tmp_path):
    cache = RunCache(root=tmp_path / "cache")
    cache.root.mkdir(parents=True)
    (cache.root / "bad.json").write_text("{not json")
    assert cache.get("bad") is None


# ----------------------------------------------------------------------
# sweeps
# ----------------------------------------------------------------------
def _points(cfg, procs):
    return [
        SweepPoint(workload="fft", nprocs=p, config=cfg, size="test")
        for p in procs
    ]


def test_run_sweep_serial_orders_and_caches(tmp_path):
    cfg = MachineConfig.small(stations_per_ring=2, rings=2, cpus=2)
    cache = RunCache(root=tmp_path / "cache")
    points = _points(cfg, (1, 2, 4))
    records = run_sweep(points, jobs=1, cache=cache)
    assert [r.nprocs for r in records] == [1, 2, 4]
    assert all(r.events > 0 and r.parallel_time_ns > 0 for r in records)

    warm = RunCache(root=tmp_path / "cache")
    again = run_sweep(points, jobs=1, cache=warm)
    assert warm.hits == 3
    assert [a.deterministic_view() for a in again] == [
        b.deterministic_view() for b in records
    ]


def test_run_sweep_parallel_matches_serial(tmp_path):
    cfg = MachineConfig.small(stations_per_ring=2, rings=2, cpus=2)
    points = _points(cfg, (1, 2))
    serial = run_sweep(points, jobs=1, cache=RunCache(root=tmp_path / "a"))
    fanned = run_sweep(points, jobs=2, cache=RunCache(root=tmp_path / "b"))
    assert [a.deterministic_view() for a in serial] == [
        b.deterministic_view() for b in fanned
    ]


def test_default_config_is_prototype():
    point = SweepPoint(workload="fft", nprocs=1)
    assert point.resolved_config() == MachineConfig.prototype()


# ----------------------------------------------------------------------
# size cap / LRU eviction / prune CLI
# ----------------------------------------------------------------------
def _sized_record(tag: str) -> RunRecord:
    # pad the stats dict so each entry has a predictable on-disk footprint
    return RunRecord(workload=tag, nprocs=1, nc_stats={"pad": "x" * 2000})


def test_cache_evicts_least_recently_used_past_cap(tmp_path):
    import os
    import time

    cache = RunCache(root=tmp_path / "cache", max_bytes=10_000_000)
    for i in range(5):
        cache.put(f"k{i}", _sized_record(f"w{i}"))
    paths = sorted((tmp_path / "cache").glob("*.json"))
    assert len(paths) == 5
    # make k0 the oldest, then freshen it with a read; k1 becomes LRU
    base = time.time() - 1000
    for i, key in enumerate(["k0", "k1", "k2", "k3", "k4"]):
        os.utime(tmp_path / "cache" / f"{key}.json", (base + i, base + i))
    assert cache.get("k0") is not None  # refreshes k0's timestamp
    entry_size = (tmp_path / "cache" / "k0.json").stat().st_size
    cache.max_bytes = entry_size * 3 + 10
    removed = cache.prune()
    assert removed == 2
    # k1 and k2 (oldest after the refresh) are gone; k0 survived the prune
    assert cache.get("k0") is not None
    assert cache.get("k1") is None
    assert cache.get("k2") is None
    assert cache.get("k3") is not None


def test_cache_put_respects_cap_automatically(tmp_path):
    cache = RunCache(root=tmp_path / "cache", max_bytes=1)
    cache.put("a", _sized_record("w"))
    cache.put("b", _sized_record("w"))
    # every put prunes back under the (absurdly small) cap
    assert len(list((tmp_path / "cache").glob("*.json"))) <= 1
    assert cache.evictions >= 1


def test_cache_prune_cli(tmp_path):
    from repro.perf.cache import main

    cache = RunCache(root=tmp_path / "cache", max_bytes=10_000_000)
    for i in range(4):
        cache.put(f"k{i}", _sized_record(f"w{i}"))
    assert main(["--dir", str(tmp_path / "cache"), "--stats"]) == 0
    assert main(["--dir", str(tmp_path / "cache"), "--prune", "--max-mb",
                 "0.000001"]) == 0
    assert list((tmp_path / "cache").glob("*.json")) == []
    assert main(["--dir", str(tmp_path / "cache"), "--clear"]) == 0


def test_cache_schema_is_current():
    from repro.perf.cache import CACHE_SCHEMA

    # schema 6: the coherence protocol (NUMACHINE_PROTOCOL / config field)
    # joined the strategy knobs (backend / scheduler / pool / fusion) in
    # the point key — entries keyed without it must not be replayed, since
    # every simulated metric differs between protocols
    assert CACHE_SCHEMA == 6


def test_point_key_separates_execution_strategies(monkeypatch):
    from repro.perf.cache import point_key

    cfg = MachineConfig.small(stations_per_ring=2, rings=2, cpus=2)
    monkeypatch.delenv("NUMACHINE_BACKEND", raising=False)
    monkeypatch.delenv("NUMACHINE_FUSE", raising=False)
    base = point_key(cfg, "hotspot", 4)
    assert point_key(cfg, "hotspot", 4) == base  # stable
    monkeypatch.setenv("NUMACHINE_BACKEND", "elab")
    assert point_key(cfg, "hotspot", 4) != base
    monkeypatch.delenv("NUMACHINE_BACKEND", raising=False)
    monkeypatch.setenv("NUMACHINE_SCHED", "heap")
    assert point_key(cfg, "hotspot", 4) != base
    monkeypatch.delenv("NUMACHINE_SCHED", raising=False)
    monkeypatch.setenv("NUMACHINE_FUSE", "on")
    fused = point_key(cfg, "hotspot", 4)
    assert fused != base
    # the knob is normalized before keying: every spelling of "on" shares
    # one entry
    monkeypatch.setenv("NUMACHINE_FUSE", "1")
    assert point_key(cfg, "hotspot", 4) == fused
    monkeypatch.setenv("NUMACHINE_FUSE", "off")
    assert point_key(cfg, "hotspot", 4) == base
