"""Tests for the two-level directory storage."""

from repro.core.directory import Directory
from repro.core.states import CacheState, LineState
from repro.interconnect.routing import Geometry, RoutingMaskCodec


def make_dir(exact=False):
    codec = RoutingMaskCodec(Geometry((4, 4)))
    return codec, Directory(codec, home_station=0,
                            default_state=LineState.LV, exact_sharers=exact)


def test_default_entry():
    codec, d = make_dir()
    e = d.entry(0x1000)
    assert e.state is LineState.LV
    assert e.routing_mask == 0
    assert not e.locked
    assert d.peek(0x2000) is None


def test_add_and_set_station_masks():
    codec, d = make_dir()
    e = d.entry(0)
    d.add_station(e, 1)
    d.add_station(e, 6)
    assert d.may_have_copy(e, 1)
    assert d.may_have_copy(e, 6)
    # inexactness: 1 = (ring0,st1), 6 = (ring1,st2) -> also selects (ring0,st2)=2
    assert d.may_have_copy(e, 2)
    d.set_station(e, 3)
    assert d.sharer_mask(e) == codec.station_mask(3)
    assert not d.may_have_copy(e, 1)


def test_exact_mode_has_no_overspecification():
    codec, d = make_dir(exact=True)
    e = d.entry(0)
    d.add_station(e, 1)
    d.add_station(e, 6)
    assert d.may_have_copy(e, 1)
    assert d.may_have_copy(e, 6)
    assert not d.may_have_copy(e, 2)   # exact: no phantom sharer
    # but the wire mask still covers the true set
    mask = d.sharer_mask(e)
    assert codec.selects(mask, 1) and codec.selects(mask, 6)


def test_clear_stations():
    codec, d = make_dir(exact=True)
    e = d.entry(0)
    d.add_station(e, 5)
    d.clear_stations(e)
    assert d.sharer_mask(e) == 0
    assert not d.may_have_copy(e, 5)


def test_line_state_helpers():
    assert LineState.LV.is_local and LineState.LI.is_local
    assert not LineState.GV.is_local
    assert LineState.LV.is_valid and LineState.GV.is_valid
    assert not LineState.LI.is_valid and not LineState.GI.is_valid
    assert CacheState.DIRTY.writable and CacheState.DIRTY.readable
    assert CacheState.SHARED.readable and not CacheState.SHARED.writable
    assert not CacheState.INVALID.readable
