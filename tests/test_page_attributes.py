"""Tests for §3.2 software-managed caching: per-page attributes."""

import pytest

from repro import AtomicRMW, Barrier, Machine, Read, SimulationError, Write
from repro.core.states import CacheState, LineState
from repro.system.address_map import PageAttributes

from conftest import small_config


def test_uncached_page_never_caches():
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:0",
                   attrs=PageAttributes(cacheable=False))

    def prog():
        yield Write(r.addr(0), 5)
        v = yield Read(r.addr(0))
        assert v == 5
        v = yield Read(r.addr(0))   # still uncached: goes to memory again
        assert v == 5

    m.run({0: prog()})
    la = m.config.line_addr(r.addr(0))
    assert m.cpus[0].l2.lookup(la) is None
    assert m.cpus[0].stats.counter("uncached_ops").value == 3
    assert m.stations[0].memory.stats.counter("uncached_reads").value == 2
    assert m.stations[0].memory.read_line(la)[0] == 5


def test_uncached_remote_page_round_trips():
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:3",
                   attrs=PageAttributes(cacheable=False))
    allc = (0, 1)

    def writer():
        yield Write(r.addr(8), 77)
        yield Barrier(0, allc)

    def reader():
        yield Barrier(0, allc)
        v = yield Read(r.addr(8))
        assert v == 77

    m.run({0: writer(), 1: reader()})
    # neither station's NC ever saw the line
    la = m.config.line_addr(r.addr(8))
    for st in m.stations:
        assert st.nc.array.probe(la) is None


def test_uncached_rmw_rejected():
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:0",
                   attrs=PageAttributes(cacheable=False))

    def prog():
        yield AtomicRMW(r.addr(0), lambda v: v + 1)

    with pytest.raises(SimulationError, match="cacheable"):
        m.run({0: prog()})


def test_exclusive_only_page_reads_take_ownership():
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:0",
                   attrs=PageAttributes(exclusive_only=True))

    def prog():
        v = yield Read(r.addr(0))
        assert v == 0
        yield Write(r.addr(0), 1)   # already exclusive: pure cache hit

    m.run({0: prog()})
    la = m.config.line_addr(r.addr(0))
    assert m.cpus[0].l2.lookup(la).state is CacheState.DIRTY
    e = m.stations[0].memory.directory.entry(la)
    assert e.state is LineState.LI
    # the write after the exclusive read generated no extra request
    assert m.cpus[0].stats.counter("write_misses").value == 0


def test_exclusive_only_page_migrates_between_readers():
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:0",
                   attrs=PageAttributes(exclusive_only=True))
    allc = (0, 1)

    def a():
        yield Read(r.addr(0))
        yield Barrier(0, allc)
        yield Barrier(1, allc)

    def b():
        yield Barrier(0, allc)
        v = yield Read(r.addr(0))   # pulls the line away from cpu 0
        assert v == 0
        yield Barrier(1, allc)

    m.run({0: a(), 1: b()})
    la = m.config.line_addr(r.addr(0))
    # only one cache may hold the line at a time
    holders = [c.cpu_id for c in m.cpus if c.l2.lookup(la, touch=False)]
    assert len(holders) == 1


def test_default_pages_unaffected():
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:0")
    assert m.memory_map.attrs_for(r.addr(0)).cacheable

    def prog():
        yield Write(r.addr(0), 9)
        v = yield Read(r.addr(0))
        assert v == 9

    m.run({0: prog()})
    la = m.config.line_addr(r.addr(0))
    assert m.cpus[0].l2.lookup(la) is not None
    assert m.cpus[0].stats.counter("uncached_ops").value == 0
