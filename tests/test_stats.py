"""Tests for the statistics primitives."""

from repro.sim.stats import Accumulator, BusyTracker, Counter, StatGroup


def test_counter():
    c = Counter("x")
    c.incr()
    c.incr(5)
    assert c.value == 6
    c.reset()
    assert c.value == 0


def test_accumulator_stats():
    a = Accumulator("lat")
    for v in (10, 20, 60):
        a.add(v)
    assert a.count == 3
    assert a.total == 90
    assert a.mean == 30
    assert a.min == 10
    assert a.max == 60


def test_accumulator_empty_mean():
    assert Accumulator("x").mean == 0.0


def test_busy_tracker_utilization():
    b = BusyTracker("bus")
    b.add_busy(30)
    assert b.utilization(now=100) == 0.30
    b.start_window(100)
    assert b.utilization(now=200) == 0.0
    b.add_busy(50)
    assert b.utilization(now=200) == 0.50


def test_busy_tracker_clamps_to_one():
    b = BusyTracker("x")
    b.add_busy(500)
    assert b.utilization(now=100) == 1.0


def test_stat_group_lazily_creates_and_reuses():
    g = StatGroup("mod")
    c1 = g.counter("hits")
    c1.incr()
    assert g.counter("hits") is c1
    assert g.counter("hits").value == 1
    a = g.accumulator("lat")
    a.add(5)
    assert g.accumulator("lat").count == 1


def test_stat_group_snapshot():
    g = StatGroup("mod")
    g.counter("hits").incr(3)
    g.accumulator("lat").add(10)
    snap = g.snapshot()
    assert snap["hits"] == 3
    assert snap["lat.mean"] == 10
    assert snap["lat.count"] == 1


def test_stat_group_reset():
    g = StatGroup("mod")
    g.counter("hits").incr(3)
    g.accumulator("lat").add(10)
    g.reset()
    assert g.counter("hits").value == 0
    assert g.accumulator("lat").count == 0
