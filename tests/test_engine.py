"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import (
    TICKS_PER_NS,
    DeadlockError,
    Engine,
    SimulationError,
    ns_to_ticks,
    ticks_to_ns,
)


def test_tick_conversion_is_exact_for_machine_clocks():
    # 150 MHz CPU and 50 MHz bus/ring must be integer tick periods
    assert ns_to_ticks(20 / 3) == 20
    assert ns_to_ticks(20.0) == 60
    assert ticks_to_ns(ns_to_ticks(20.0)) == 20.0
    assert TICKS_PER_NS == 3


def test_events_run_in_time_order():
    engine = Engine()
    log = []
    engine.schedule(30, lambda: log.append("c"))
    engine.schedule(10, lambda: log.append("a"))
    engine.schedule(20, lambda: log.append("b"))
    engine.run()
    assert log == ["a", "b", "c"]
    assert engine.now == 30


def test_same_time_events_run_in_schedule_order():
    engine = Engine()
    log = []
    for i in range(10):
        engine.schedule(5, lambda i=i: log.append(i))
    engine.run()
    assert log == list(range(10))


def test_priority_breaks_ties():
    engine = Engine()
    log = []
    engine.schedule(5, lambda: log.append("inject"), priority=Engine.PRIO_INJECT)
    engine.schedule(5, lambda: log.append("arrival"), priority=Engine.PRIO_ARRIVAL)
    engine.run()
    assert log == ["arrival", "inject"]


def test_schedule_with_argument():
    engine = Engine()
    got = []
    engine.schedule(1, got.append, "payload")
    engine.run()
    assert got == ["payload"]


def test_nested_scheduling_advances_time():
    engine = Engine()
    times = []

    def first():
        times.append(engine.now)
        engine.schedule(7, second)

    def second():
        times.append(engine.now)

    engine.schedule(3, first)
    engine.run()
    assert times == [3, 10]


def test_run_until_stops_before_later_events():
    engine = Engine()
    log = []
    engine.schedule(10, lambda: log.append("early"))
    engine.schedule(100, lambda: log.append("late"))
    engine.run(until=50)
    assert log == ["early"]
    assert engine.now == 50
    assert engine.pending == 1


def test_run_max_events():
    engine = Engine()
    log = []
    for i in range(5):
        engine.schedule(i + 1, lambda i=i: log.append(i))
    processed = engine.run(max_events=2)
    assert processed == 2
    assert log == [0, 1]


def test_negative_delay_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    engine = Engine()
    engine.schedule(10, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(5, lambda: None)


def test_check_quiescent_raises_when_watcher_reports():
    engine = Engine()
    engine.blocked_watchers.append(lambda: "cpu 3 stuck")
    with pytest.raises(DeadlockError, match="cpu 3 stuck"):
        engine.check_quiescent()


def test_check_quiescent_silent_when_events_pending():
    engine = Engine()
    engine.blocked_watchers.append(lambda: "stuck")
    engine.schedule(1, lambda: None)
    engine.check_quiescent()  # no raise: queue is not drained


def test_events_run_counter():
    engine = Engine()
    for _ in range(7):
        engine.schedule(1, lambda: None)
    engine.run()
    assert engine.events_run == 7
