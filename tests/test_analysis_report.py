"""Tests for the analysis report module."""

from repro import Machine
from repro.analysis import cpu_latency_summary, format_report, machine_report
from repro.workloads import make

from conftest import small_config


def _run_something():
    m = Machine(small_config())
    wl = make("ocean", "test")
    result_wl = wl.run(m, nprocs=4)
    return m, result_wl


def test_machine_report_keys_present():
    m, _ = _run_something()
    rep = machine_report(m)
    for key in (
        "nc_hit_rate", "nc_combining_rate", "false_remote_rate",
        "special_reads", "util_bus", "util_local_ring", "util_central_ring",
        "delay_send_cycles", "memory_nacks",
    ):
        assert key in rep, key
    assert 0 <= rep["nc_hit_rate"] <= 1
    assert rep["nc_requests"] > 0


def test_format_report_renders_percentages():
    m, _ = _run_something()
    text = format_report(machine_report(m))
    assert "%" in text
    assert "nc_hit_rate" in text
    # every line is 'key value'
    for line in text.splitlines():
        assert len(line.split()) >= 2


def test_cpu_latency_summary_has_read_and_write():
    m, _ = _run_something()
    summary = cpu_latency_summary(m)
    assert "read" in summary and "write" in summary
    # local reads cost at least the Table-1 floor; remote ones more
    assert summary["read"] > 300
    assert summary["write"] > 200


def test_report_with_result_includes_parallel_time():
    m = Machine(small_config())
    wl = make("ocean", "test")
    res = wl.run(m, nprocs=2)
    from repro.system.machine import RunResult

    raw = RunResult(time_ticks=m.engine.now, time_ns=m.engine.now / 3,
                    events=0, cpu_finish_ns={0: 1000.0})
    rep = machine_report(m, raw)
    assert rep["parallel_time_us"] == 1.0
