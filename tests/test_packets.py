"""Tests for packet classification and the sinkable/nonsinkable split."""

from hypothesis import given
from hypothesis import strategies as st

from repro.interconnect.packet import NONSINKABLE, MsgType, Packet, is_sinkable


def test_requests_are_nonsinkable():
    for t in (MsgType.READ, MsgType.READ_EX, MsgType.UPGRADE,
              MsgType.SPECIAL_READ, MsgType.INTERVENTION,
              MsgType.INTERVENTION_EX, MsgType.PREFETCH):
        assert not is_sinkable(t), t


def test_responses_and_commands_are_sinkable():
    for t in (MsgType.DATA_RESP, MsgType.DATA_RESP_EX, MsgType.ACK_UPGRADE,
              MsgType.INVALIDATE, MsgType.NACK, MsgType.WRITE_BACK,
              MsgType.MULTICAST_DATA, MsgType.INTERRUPT,
              MsgType.BARRIER_WRITE, MsgType.XFER_ACK,
              MsgType.NACK_INTERVENTION, MsgType.NO_DATA):
        assert is_sinkable(t), t


def test_every_message_type_is_classified():
    for t in MsgType:
        # membership is total: each type is exactly one of the two classes
        assert is_sinkable(t) == (t not in NONSINKABLE)


def test_nack_turns_nonsinkable_into_sinkable():
    """The paper's scalable strategy: a NACK (sinkable) answers a blocked
    nonsinkable, so nonsinkables never have to queue unboundedly."""
    assert not is_sinkable(MsgType.READ)
    assert is_sinkable(MsgType.NACK)


def test_packet_ids_unique():
    a = Packet(mtype=MsgType.READ, addr=0, src_station=0, dest_mask=0)
    b = Packet(mtype=MsgType.READ, addr=0, src_station=0, dest_mask=0)
    assert a.pid != b.pid


def test_copy_for_branch_is_independent():
    p = Packet(mtype=MsgType.INVALIDATE, addr=64, src_station=1, dest_mask=7,
               ordered=True, meta={"state": "deliver"})
    c = p.copy_for_branch()
    assert c.pid != p.pid
    assert c.addr == p.addr and c.ordered
    c.meta["state"] = "ascend"
    c.dest_mask = 1
    assert p.meta["state"] == "deliver"
    assert p.dest_mask == 7


@given(st.sampled_from(list(MsgType)), st.integers(0, 2**20))
def test_sinkable_property_matches_helper(mtype, addr):
    p = Packet(mtype=mtype, addr=addr, src_station=0, dest_mask=0)
    assert p.sinkable == is_sinkable(mtype)
