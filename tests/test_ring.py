"""Tests for the slotted-ring transport: latency, bandwidth, ordering,
multicast delivery, and sequencing-point routing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect.packet import MsgType, Packet
from repro.interconnect.ring import Ring
from repro.sim.engine import Engine

SLOT = 60
HOP = 60


class Sink:
    """A passive ring member that consumes everything aimed at it."""

    def __init__(self, pos):
        self.pos = pos
        self.got = []

    def ring_arrival(self, ring, packet):
        if packet.meta.get("dest_pos") == self.pos:
            self.got.append((ring.engine.now, packet))
        else:
            ring.forward(self.pos, packet)


def make_ring(size=4):
    engine = Engine()
    ring = Ring(engine, "r", level=0, size=size, slot_ticks=SLOT, hop_ticks=HOP)
    sinks = [Sink(i) for i in range(size)]
    for i, s in enumerate(sinks):
        ring.attach(i, s)
    return engine, ring, sinks


def pkt(dest_pos, flits=1, pid_meta=None):
    p = Packet(mtype=MsgType.DATA_RESP, addr=0, src_station=0, dest_mask=0,
               flits=flits)
    p.meta["dest_pos"] = dest_pos
    if pid_meta is not None:
        p.meta["tag"] = pid_meta
    return p


def test_single_hop_latency():
    engine, ring, sinks = make_ring()
    ring.inject(0, pkt(dest_pos=1))
    engine.run()
    t, _ = sinks[1].got[0]
    assert t == HOP  # head cut-through: one hop


def test_multi_hop_latency_accumulates():
    engine, ring, sinks = make_ring()
    ring.inject(0, pkt(dest_pos=3))
    engine.run()
    t, _ = sinks[3].got[0]
    assert t == 3 * HOP


def test_wraparound_path():
    engine, ring, sinks = make_ring()
    ring.inject(2, pkt(dest_pos=1))
    engine.run()
    t, _ = sinks[1].got[0]
    assert t == 3 * HOP  # 2 -> 3 -> 0 -> 1


def test_multi_flit_message_reserves_bandwidth():
    """Two 5-flit messages on the same link: the second's head waits for the
    first's five slots."""
    engine, ring, sinks = make_ring()
    ring.inject(0, pkt(dest_pos=1, flits=5))
    ring.inject(0, pkt(dest_pos=1, flits=5))
    engine.run()
    t1, _ = sinks[1].got[0]
    t2, _ = sinks[1].got[1]
    assert t1 == HOP
    assert t2 == 5 * SLOT + HOP


def test_through_traffic_beats_injection():
    """A packet already on the ring takes the slot; the locally injected
    packet waits (slotted-ring semantics)."""
    engine, ring, sinks = make_ring()
    # packet from 0 headed to 2 passes node 1 at t=HOP
    ring.inject(0, pkt(dest_pos=2, flits=1))
    # node 1 wants to inject toward 2 at exactly that time
    engine.schedule(HOP, lambda: ring.inject(1, pkt(dest_pos=2, pid_meta="local")))
    engine.run()
    arrivals = sinks[2].got
    assert arrivals[0][1].meta.get("tag") is None      # through packet first
    assert arrivals[1][1].meta.get("tag") == "local"
    assert arrivals[1][0] >= arrivals[0][0] + SLOT


def test_fifo_order_preserved_same_path():
    """Messages injected in order at one node arrive in order at another —
    the ordering property the coherence protocol depends on."""
    engine, ring, sinks = make_ring()
    for i in range(10):
        ring.inject(0, pkt(dest_pos=3, flits=1 + (i % 3), pid_meta=i))
    engine.run()
    tags = [p.meta["tag"] for _, p in sinks[3].got]
    assert tags == list(range(10))


def test_utilization_accounting():
    engine, ring, sinks = make_ring()
    ring.inject(0, pkt(dest_pos=2, flits=9))
    engine.run()
    # 9 flits over 2 links = 18 slot-times of busy
    assert ring.busy.busy == 18 * SLOT
    assert 0 < ring.utilization(engine.now) <= 1


def test_halt_link_delays_upstream():
    engine, ring, sinks = make_ring()
    ring.halt_link(into_pos=1, duration=1000)
    ring.inject(0, pkt(dest_pos=1))
    engine.run()
    t, _ = sinks[1].got[0]
    assert t >= 1000  # the link feeding position 1 was stalled


@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3),
                          st.integers(1, 9)), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_property_pairwise_fifo_ordering(sends):
    """For every (src, dst) pair, arrival order equals injection order, for
    arbitrary interleaved traffic with mixed message sizes."""
    engine, ring, sinks = make_ring()
    seq = {}
    for i, (src, dst, flits) in enumerate(sends):
        if src == dst:
            continue
        p = pkt(dest_pos=dst, flits=flits, pid_meta=(src, dst, i))
        ring.inject(src, p)
    engine.run()
    for sink in sinks:
        per_pair = {}
        for _, p in sink.got:
            src, dst, i = p.meta["tag"]
            per_pair.setdefault((src, dst), []).append(i)
        for order in per_pair.values():
            assert order == sorted(order)
