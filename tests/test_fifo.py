"""Tests for the bounded FIFO with backpressure."""

import pytest

from repro.sim.fifo import Fifo, FifoFullError


def test_fifo_order():
    f = Fifo("t", capacity=4)
    for i in range(3):
        f.push(i, now=i)
    assert [f.pop(now=10) for _ in range(3)] == [0, 1, 2]


def test_capacity_and_overflow():
    f = Fifo("t", capacity=2)
    f.push("a", 0)
    f.push("b", 0)
    assert f.full
    with pytest.raises(FifoFullError):
        f.push("c", 0)


def test_high_water_default():
    f = Fifo("t", capacity=10)
    assert f.high_water == 8
    for i in range(7):
        f.push(i, 0)
    assert not f.pressured
    f.push(7, 0)
    assert f.pressured


def test_wait_time_accounting():
    f = Fifo("t")
    f.push("x", now=100)
    f.pop(now=160)
    assert f.wait_time.count == 1
    assert f.wait_time.mean == 60


def test_max_depth_tracked():
    f = Fifo("t")
    for i in range(5):
        f.push(i, 0)
    f.pop(0)
    f.push(9, 0)
    assert f.max_depth == 5


def test_when_space_callback_fires_after_pop():
    f = Fifo("t", capacity=1)
    f.push("a", 0)
    fired = []
    f.when_space(lambda: fired.append(True))
    assert not fired
    f.pop(1)
    assert fired == [True]
    assert f.stalls.value == 1


def test_unbounded_fifo_never_full():
    f = Fifo("t", capacity=None)
    for i in range(1000):
        f.push(i, 0)
    assert not f.full
    assert not f.pressured


def test_mean_depth_time_weighted():
    f = Fifo("t")
    # depth 0 over [0,10), depth 1 over [10,30), depth 2 over [30,40),
    # depth 1 over [40,100): area = 0 + 20 + 20 + 60 = 100
    f.push("a", now=10)
    f.push("b", now=30)
    f.pop(now=40)
    assert f.mean_depth(100) == pytest.approx(1.0)
    # a deeper interval moves the mean even after it ends
    assert f.mean_depth(40) == pytest.approx(40 / 40)


def test_mean_depth_at_time_zero():
    f = Fifo("t")
    assert f.mean_depth(0) == 0.0
    f.push("a", 0)
    assert f.mean_depth(0) == 1.0


def test_stats_snapshot_contents():
    f = Fifo("t", capacity=8)
    f.push("a", now=0)
    f.push("b", now=10)
    f.pop(now=20)
    snap = f.stats_snapshot(now=20)
    assert snap["depth"] == 1
    assert snap["capacity"] == 8
    assert snap["max_depth"] == 2
    assert snap["pushes"] == 2
    assert snap["stalls"] == 0
    assert snap["wait_count"] == 1
    assert snap["wait_mean_ticks"] == 20
    # area: 1*[0,10) + 2*[10,20) = 30 -> mean 1.5
    assert snap["mean_depth"] == pytest.approx(1.5)


def test_drain():
    f = Fifo("t")
    for i in range(4):
        f.push(i, 0)
    assert f.drain() == [0, 1, 2, 3]
    assert f.empty
