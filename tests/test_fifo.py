"""Tests for the bounded FIFO with backpressure."""

import pytest

from repro.sim.fifo import Fifo, FifoFullError


def test_fifo_order():
    f = Fifo("t", capacity=4)
    for i in range(3):
        f.push(i, now=i)
    assert [f.pop(now=10) for _ in range(3)] == [0, 1, 2]


def test_capacity_and_overflow():
    f = Fifo("t", capacity=2)
    f.push("a", 0)
    f.push("b", 0)
    assert f.full
    with pytest.raises(FifoFullError):
        f.push("c", 0)


def test_high_water_default():
    f = Fifo("t", capacity=10)
    assert f.high_water == 8
    for i in range(7):
        f.push(i, 0)
    assert not f.pressured
    f.push(7, 0)
    assert f.pressured


def test_wait_time_accounting():
    f = Fifo("t")
    f.push("x", now=100)
    f.pop(now=160)
    assert f.wait_time.count == 1
    assert f.wait_time.mean == 60


def test_max_depth_tracked():
    f = Fifo("t")
    for i in range(5):
        f.push(i, 0)
    f.pop(0)
    f.push(9, 0)
    assert f.max_depth == 5


def test_when_space_callback_fires_after_pop():
    f = Fifo("t", capacity=1)
    f.push("a", 0)
    fired = []
    f.when_space(lambda: fired.append(True))
    assert not fired
    f.pop(1)
    assert fired == [True]
    assert f.stalls.value == 1


def test_unbounded_fifo_never_full():
    f = Fifo("t", capacity=None)
    for i in range(1000):
        f.push(i, 0)
    assert not f.full
    assert not f.pressured


def test_drain():
    f = Fifo("t")
    for i in range(4):
        f.push(i, 0)
    assert f.drain() == [0, 1, 2, 3]
    assert f.empty
