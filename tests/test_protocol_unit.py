"""Unit-level protocol tests: drive the memory module and network cache
with crafted packets (no workload in the loop) and assert the Fig. 5 /
Fig. 6 transitions, NACK behaviour, and stale-answer filtering."""


from repro import Machine, MsgType, Packet
from repro.core.states import LineState

from conftest import small_config


def make_machine():
    m = Machine(small_config())
    return m


def drain(m):
    m.engine.run()


def remote_pkt(m, mtype, addr, src_station, requester=None, **meta):
    return Packet(
        mtype=mtype, addr=addr, src_station=src_station,
        dest_mask=m.codec.station_mask(m.config.home_station(addr)),
        requester=requester, meta=meta,
    )


# ----------------------------------------------------------------------
# memory module (Fig. 5)
# ----------------------------------------------------------------------
def test_mem_remote_read_lv_to_gv():
    m = make_machine()
    mem = m.stations[0].memory
    la = 0
    mem.write_line(la, [7] * 8)
    pkt = remote_pkt(m, MsgType.READ, la, src_station=1, requester=2)
    mem.handle(pkt)
    drain(m)
    e = mem.directory.entry(la)
    assert e.state is LineState.GV
    assert mem.directory.may_have_copy(e, 1)
    # the response reached station 1's NC and was granted to cpu 2
    line = m.stations[1].nc.array.probe(la)
    assert line is None or True  # no pending existed: counted as stray
    assert m.stations[1].nc.stats.counter("stray_data").value == 1


def test_mem_remote_readex_lv_sends_exclusive_data():
    m = make_machine()
    mem = m.stations[0].memory
    la = 64
    mem.write_line(la, [3] * 8)
    mem.handle(remote_pkt(m, MsgType.READ_EX, la, src_station=2, requester=4))
    drain(m)
    e = mem.directory.entry(la)
    assert e.state is LineState.GI
    assert mem._owner_station(e) == 2


def test_mem_nacks_requests_to_locked_line():
    m = make_machine()
    mem = m.stations[0].memory
    la = 128
    e = mem.directory.entry(la)
    from repro.memory.memory_module import Pending

    mem._lock(e, Pending(kind="fetch", req_type=MsgType.READ, requester=9,
                         req_station=3, is_local=False))
    mem.handle(remote_pkt(m, MsgType.READ, la, src_station=1, requester=2))
    drain(m)
    assert mem.stats.counter("nacks").value == 1
    # the requester's NC got a NACK (no pending -> silently dropped there)
    assert e.locked


def test_mem_stale_intervention_answer_ignored():
    """A data answer carrying an old txn id must not complete the current
    lock round."""
    m = make_machine()
    mem = m.stations[0].memory
    la = 192
    e = mem.directory.entry(la)
    from repro.memory.memory_module import Pending

    mem._lock(e, Pending(kind="fetch", req_type=MsgType.READ, requester=1,
                         req_station=1, is_local=False))
    current_txn = e.pending.extra["txn"]
    stale = remote_pkt(m, MsgType.DATA_RESP, la, src_station=2, requester=1,
                       to_home=True, txn=current_txn - 1 if current_txn else 999)
    stale.data = [1] * 8
    mem.handle(stale)
    drain(m)
    assert e.locked                       # still waiting for the real answer
    assert mem.stats.counter("stale_answers").value == 1


def test_mem_stale_nack_intervention_ignored():
    m = make_machine()
    mem = m.stations[0].memory
    la = 256
    e = mem.directory.entry(la)
    from repro.memory.memory_module import Pending

    mem._lock(e, Pending(kind="fetch", req_type=MsgType.READ, requester=1,
                         req_station=1, is_local=False))
    mem.handle(remote_pkt(m, MsgType.NACK_INTERVENTION, la, src_station=2,
                          requester=1, txn=12345))
    drain(m)
    assert e.locked


def test_mem_remote_writeback_gi_to_gv():
    m = make_machine()
    mem = m.stations[0].memory
    la = 320
    e = mem.directory.entry(la)
    e.state = LineState.GI
    mem.directory.set_station(e, 1)
    wb = remote_pkt(m, MsgType.WRITE_BACK, la, src_station=1)
    wb.data = [42] * 8
    mem.handle(wb)
    drain(m)
    assert e.state is LineState.GV
    assert mem.read_line(la) == [42] * 8


def test_mem_upgrade_fallback_sends_data_when_sharer_unknown():
    """§2.3: if the directory says the requester no longer shares the line,
    the home answers with data instead of a bare ack."""
    m = make_machine()
    mem = m.stations[0].memory
    la = 384
    mem.write_line(la, [5] * 8)
    e = mem.directory.entry(la)
    e.state = LineState.GV
    mem.directory.set_station(e, 2)       # station 1 NOT a sharer
    mem.handle(remote_pkt(m, MsgType.UPGRADE, la, src_station=1, requester=2))
    drain(m)
    assert mem.stats.counter("upgrade_data_sent").value == 1


def test_mem_special_read_served_from_dram():
    m = make_machine()
    mem = m.stations[0].memory
    la = 448
    mem.write_line(la, [9] * 8)
    e = mem.directory.entry(la)
    e.state = LineState.GI
    mem.directory.set_station(e, 1)
    mem.handle(remote_pkt(m, MsgType.SPECIAL_READ, la, src_station=1,
                          requester=3))
    drain(m)
    assert mem.stats.counter("special_reads_served").value == 1


# ----------------------------------------------------------------------
# network cache (Fig. 6)
# ----------------------------------------------------------------------
def test_nc_invalidate_on_gi_ignored():
    """§2.3: 'if an invalidation arrives at a network cache for a cache
    line in the GI state due to an ambiguous routing mask, then the
    invalidation will not be sent to any of the local processors'."""
    m = make_machine()
    nc = m.stations[1].nc
    la = 0  # homed at station 0, remote for station 1
    from repro.cache.nc_array import NCLine

    nc.array.insert(NCLine(addr=la, state=LineState.GI))
    inv = Packet(mtype=MsgType.INVALIDATE, addr=la, src_station=0,
                 dest_mask=m.codec.station_mask(1), requester=5,
                 meta={"writer_station": 3})
    nc.handle(inv)
    drain(m)
    assert nc.stats.counter("invalidate_ignored_gi").value == 1
    assert m.cpus[2].stats.counter("invalidations_received").value == 0


def test_nc_invalidate_on_owned_line_is_stale_and_ignored():
    m = make_machine()
    nc = m.stations[1].nc
    la = 0
    from repro.cache.nc_array import NCLine

    nc.array.insert(NCLine(addr=la, state=LineState.LV, data=[8] * 8,
                           proc_mask=0b01))
    inv = Packet(mtype=MsgType.INVALIDATE, addr=la, src_station=0,
                 dest_mask=m.codec.station_mask(1), requester=5,
                 meta={"writer_station": 3})
    nc.handle(inv)
    drain(m)
    assert nc.stats.counter("invalidate_stale_owner").value == 1
    assert nc.array.probe(la).state is LineState.LV   # untouched


def test_nc_invalidate_not_in_broadcasts_to_all_cpus():
    m = make_machine()
    nc = m.stations[1].nc
    la = 64
    inv = Packet(mtype=MsgType.INVALIDATE, addr=la, src_station=0,
                 dest_mask=m.codec.station_mask(1), requester=5,
                 meta={"writer_station": 3})
    nc.handle(inv)
    drain(m)
    assert nc.stats.counter("invalidate_broadcasts").value == 1


def test_nc_intervention_from_lv_serves_and_goes_gv():
    m = make_machine()
    nc = m.stations[1].nc
    home_mem = m.stations[0].memory
    la = 128
    from repro.cache.nc_array import NCLine
    from repro.memory.memory_module import Pending

    # simulate prior exclusive ownership: home GI -> station 1, and the
    # in-flight read that the home locked while forwarding the intervention
    e = home_mem.directory.entry(la)
    e.state = LineState.GI
    home_mem.directory.set_station(e, 1)
    home_mem._lock(e, Pending(kind="fetch", req_type=MsgType.READ,
                              requester=8, req_station=2, is_local=False))
    txn = e.pending.extra["txn"]
    nc.array.insert(NCLine(addr=la, state=LineState.LV, data=[6] * 8))
    iv = Packet(mtype=MsgType.INTERVENTION, addr=la, src_station=0,
                dest_mask=m.codec.station_mask(1), requester=8,
                meta={"home": 0, "req_station": 2, "txn": txn})
    nc.handle(iv)
    drain(m)
    assert nc.array.probe(la).state is LineState.GV
    # the home received its copy, unlocked, and moved to GV
    assert not e.locked
    assert e.state is LineState.GV
    assert home_mem.read_line(la) == [6] * 8


def test_nc_intervention_nothing_found_nacks_home():
    m = make_machine()
    nc = m.stations[1].nc
    home_mem = m.stations[0].memory
    la = 192
    from repro.memory.memory_module import Pending

    e = home_mem.directory.entry(la)
    home_mem._lock(e, Pending(kind="fetch", req_type=MsgType.READ,
                              requester=4, req_station=2, is_local=False))
    txn = e.pending.extra["txn"]
    iv = Packet(mtype=MsgType.INTERVENTION, addr=la, src_station=0,
                dest_mask=m.codec.station_mask(1), requester=4,
                meta={"home": 0, "req_station": 2, "txn": txn})
    nc.handle(iv)
    drain(m)
    # home unlocked and bounced the requester
    assert not e.locked
    assert nc.stats.counter("intervention_broadcasts").value == 1


def test_nc_false_remote_counter():
    m = make_machine()
    nc = m.stations[1].nc
    la = 256
    iv = Packet(mtype=MsgType.INTERVENTION, addr=la, src_station=0,
                dest_mask=m.codec.station_mask(1), requester=4,
                meta={"home": 0, "req_station": 1, "false_remote": True,
                      "txn": None})
    nc.handle(iv)
    drain(m)
    assert nc.stats.counter("false_remotes").value == 1


def test_nc_multicast_data_adopted():
    m = make_machine()
    nc = m.stations[1].nc
    la = 320
    mc = Packet(mtype=MsgType.MULTICAST_DATA, addr=la, src_station=0,
                dest_mask=m.codec.station_mask(1), requester=0,
                data=[11] * 8, meta={"writer_station": 0})
    nc.handle(mc)
    drain(m)
    line = nc.array.probe(la)
    assert line.state is LineState.GV
    assert line.data == [11] * 8
    assert nc.stats.counter("multicast_fills").value == 1
