"""Integration tests for the full interconnect: station ring interfaces,
inter-ring interfaces, hierarchy routing, multicast and sequencing."""

import pytest

from repro import Machine, MachineConfig, MsgType, Packet
from repro.interconnect.routing import Geometry
from repro.interconnect.topology import build_interconnect
from repro.sim.engine import Engine

from conftest import small_config


def _capture_machine(cfg):
    """A machine whose stations record delivered packets instead of acting."""
    m = Machine(cfg)
    captured = {s.station_id: [] for s in m.stations}
    for st in m.stations:
        st.deliver_from_ring = (
            lambda pkt, sid=st.station_id: captured[sid].append(pkt)
        )
        st.ring_interface.deliver_cb = st.deliver_from_ring
    return m, captured


def _send(m, src, mask, mtype=MsgType.DATA_RESP, ordered=False, flits=1):
    pkt = Packet(mtype=mtype, addr=0, src_station=src, dest_mask=mask,
                 ordered=ordered, flits=flits)
    m.stations[src].ring_interface.send(pkt)
    return pkt


def test_point_to_point_same_ring():
    m, captured = _capture_machine(small_config())
    _send(m, 0, m.codec.station_mask(1))
    m.engine.run()
    assert len(captured[1]) == 1
    assert all(not captured[s] for s in captured if s != 1)


def test_point_to_point_cross_ring():
    m, captured = _capture_machine(small_config())
    _send(m, 0, m.codec.station_mask(3))  # station 3 = ring 1, pos 1
    m.engine.run()
    assert len(captured[3]) == 1
    assert all(not captured[s] for s in captured if s != 3)


def test_self_send_loopback():
    m, captured = _capture_machine(small_config())
    _send(m, 2, m.codec.station_mask(2))
    m.engine.run()
    assert len(captured[2]) == 1


def test_exact_multicast_all_stations():
    m, captured = _capture_machine(small_config())
    mask = m.codec.combine(range(m.config.num_stations))
    _send(m, 0, mask)
    m.engine.run()
    for sid, pkts in captured.items():
        assert len(pkts) == 1, f"station {sid} got {len(pkts)}"


def test_inexact_multicast_over_delivers():
    """Fig. 3: combining stations 0 and 3 also reaches 1 and 2."""
    m, captured = _capture_machine(small_config())  # 2 stations x 2 rings
    mask = m.codec.combine([0, 3])
    _send(m, 0, mask)
    m.engine.run()
    for sid in (0, 1, 2, 3):
        assert len(captured[sid]) == 1


def test_ordered_multicast_passes_sequencing_point():
    """An ordered local-ring multicast must travel via the IRI even when
    the target is upstream, so it arrives later than a direct send."""
    cfg = small_config()
    # direct (unordered)
    m1, cap1 = _capture_machine(cfg)
    _send(m1, 0, m1.codec.station_mask(1), ordered=False)
    m1.engine.run()
    t_direct = m1.engine.now
    # ordered: 0 -> IRI (pos 2) -> wraps to 1
    m2, cap2 = _capture_machine(small_config())
    _send(m2, 0, m2.codec.station_mask(1), mtype=MsgType.INVALIDATE, ordered=True)
    m2.engine.run()
    t_ordered = m2.engine.now
    assert len(cap2[1]) == 1
    assert t_ordered > t_direct


def test_ordered_multicast_returns_to_origin():
    """The paper's invalidation pattern: origin included in the mask gets
    its own copy back (the unlock signal)."""
    m, captured = _capture_machine(small_config())
    mask = m.codec.combine([0, 3])
    _send(m, 0, mask, mtype=MsgType.INVALIDATE, ordered=True)
    m.engine.run()
    assert len(captured[0]) == 1


def test_sinkable_priority_over_nonsinkable():
    """When both queues hold packets, the sinkable is delivered first."""
    m, captured = _capture_machine(small_config())
    # a nonsinkable and a sinkable sent back-to-back from 0 to 1
    _send(m, 0, m.codec.station_mask(1), mtype=MsgType.READ)
    _send(m, 0, m.codec.station_mask(1), mtype=MsgType.DATA_RESP, flits=9)
    m.engine.run()
    kinds = [p.mtype for p in captured[1]]
    assert set(kinds) == {MsgType.READ, MsgType.DATA_RESP}


def test_nonsinkable_credit_limit():
    cfg = small_config(nonsink_limit=2)
    m, captured = _capture_machine(cfg)
    ri = m.stations[0].ring_interface
    for _ in range(5):
        _send(m, 0, m.codec.station_mask(1), mtype=MsgType.READ)
    # before running, three must be waiting for credits
    assert len(ri._pending_out) == 3
    m.engine.run()
    # all delivered in the end (credits recycle on delivery)
    assert len(captured[1]) == 5
    assert ri.stats.counter("nonsink_credit_waits").value == 3


def test_data_before_invalidate_ordering():
    """fig 7's guarantee: a data response sent before an ordered
    invalidation on the same source arrives first at the destination."""
    m, captured = _capture_machine(small_config())
    home, target = 2, 0
    data = _send(m, home, m.codec.station_mask(target),
                 mtype=MsgType.DATA_RESP_EX, flits=9)
    inv = Packet(mtype=MsgType.INVALIDATE, addr=0, src_station=home,
                 dest_mask=m.codec.combine([target, home]), ordered=True)
    m.stations[home].ring_interface.send(inv)
    m.engine.run()
    kinds = [p.mtype for p in captured[target]]
    assert kinds.index(MsgType.DATA_RESP_EX) < kinds.index(MsgType.INVALIDATE)


@pytest.mark.parametrize("levels,cpus", [((4,), 1), ((2, 2), 1), ((2, 2, 2), 1)])
def test_topology_builder_geometries(levels, cpus):
    cfg = MachineConfig(
        geometry=Geometry(levels, processors_per_station=cpus),
        l1_size_bytes=1024, l2_size_bytes=8192, nc_size_bytes=32768,
        station_mem_bytes=1 << 22,
    )
    engine = Engine()
    net = build_interconnect(engine, cfg)
    nlocal = 1
    for w in levels[1:]:
        nlocal *= w
    assert len(net.local_rings) == nlocal
    expected_iris = 0
    rings_at = 1
    for level in range(len(levels) - 1, 0, -1):
        rings_at *= levels[level]
    # count: each non-top ring has one IRI
    total_rings_below_top = 0
    prod = 1
    for level in range(len(levels) - 1, 0, -1):
        prod *= levels[level]
        total_rings_below_top += 0  # counted via iris directly below
    assert len(net.iris) == sum(
        _rings_at_level(levels, lvl) for lvl in range(len(levels) - 1)
    )


def _rings_at_level(levels, level):
    n = 1
    for w in levels[level + 1:]:
        n *= w
    return n


def test_three_level_machine_end_to_end():
    """Packets route correctly across a 3-level hierarchy."""
    cfg = MachineConfig(
        geometry=Geometry((2, 2, 2), processors_per_station=1),
        l1_size_bytes=1024, l2_size_bytes=8192, nc_size_bytes=32768,
        station_mem_bytes=1 << 22,
    )
    m, captured = _capture_machine(cfg)
    far = cfg.num_stations - 1
    _send(m, 0, m.codec.station_mask(far))
    mask_all = m.codec.combine(range(cfg.num_stations))
    _send(m, 0, mask_all, mtype=MsgType.INVALIDATE, ordered=True)
    m.engine.run()
    assert len(captured[far]) == 2
    for sid in range(cfg.num_stations):
        assert captured[sid], f"station {sid} missed the global multicast"
