"""Tests for the synthetic microbenchmarks and the suite registry."""

import pytest

from repro import Machine
from repro.workloads import SUITE, make
from repro.workloads.synthetic import (
    EurekaSpin,
    FlushStorm,
    HotSpot,
    ProducerConsumer,
    UniformAccess,
)

from conftest import small_config


def test_uniform_access_completes_with_traffic():
    m = Machine(small_config())
    UniformAccess(ops=80).run(m)
    s = m.nc_stats()
    assert s.get("requests", 0) > 0


def test_hotspot_concentrates_on_one_station():
    m = Machine(small_config())
    HotSpot(ops=60, hot_station=2).run(m)
    hot_mem = m.stations[2].memory
    others = [m.stations[s].memory for s in (0, 1, 3)]
    hot_txns = sum(c.value for c in hot_mem.stats.counters.values())
    assert all(
        sum(c.value for c in mem.stats.counters.values()) <= hot_txns
        for mem in others
    )


def test_producer_consumer_asserts_internally():
    """The workload itself raises on any stale read — running to completion
    IS the sequential-consistency assertion."""
    m = Machine(small_config())
    ProducerConsumer(rounds=6, payload=4).run(m)


def test_eureka_update_and_invalidate_modes_agree_on_values():
    for use_update in (False, True):
        m = Machine(small_config())
        EurekaSpin(announcements=3, use_update=use_update).run(m)
        wl_ok = True  # completion implies every spinner saw every round
        assert wl_ok


def test_flush_storm_verifies_all_lines():
    m = Machine(small_config())
    FlushStorm(lines_per_cpu=12).run(m)


# ----------------------------------------------------------------------
# the suite registry
# ----------------------------------------------------------------------
def test_suite_covers_figures():
    from repro.workloads import FIG13_KERNELS, FIG14_APPS, FIG15_APPS

    for name in FIG13_KERNELS + FIG14_APPS + FIG15_APPS:
        assert name in SUITE, name


def test_suite_entries_have_paper_sizes_and_kinds():
    for name, entry in SUITE.items():
        assert entry["paper"], name
        assert entry["kind"] in ("kernel", "app")
        wl = entry["test"]()
        assert wl.name == name


@pytest.mark.parametrize("name", sorted(SUITE))
def test_every_suite_workload_runs_at_test_size(name):
    m = Machine(small_config())
    wl = make(name, "test")
    result = wl.run(m, nprocs=4)
    assert result.parallel_time_ns > 0
    assert result.nprocs == 4


def test_workload_run_with_explicit_cpu_list():
    m = Machine(small_config())
    wl = make("fft", "test")
    cpus = [0, 2, 4, 6]  # one per station
    result = wl.run(m, cpus=cpus)
    assert result.nprocs == 4
    # the chosen CPUs did the work
    for c in cpus:
        assert m.cpus[c].done
    for c in (1, 3, 5, 7):
        assert m.cpus[c].program is None
