"""Job-server tests: canonicalization, coalescing, backpressure, drain,
and the /metrics exposition.

Event-loop pieces run under ``asyncio.run`` inside plain sync tests (no
pytest-asyncio in the toolchain).  Pool behaviour is pinned with two
injected executors: a counting wrapper around a thread pool (real
simulations, observable submission count) and a stalling executor whose
futures the test completes by hand (deterministic queue/drain states).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import re

import pytest

from repro.perf.cache import RunCache
from repro.perf.ledger import LEDGER_SCHEMA, make_entry
from repro.perf.sweep import run_point
from repro.obs.registry import serve_to_prometheus
from repro.serve import (
    Backpressure,
    Draining,
    JobExpired,
    JobManager,
    Server,
    canonical_point,
)
from repro.serve.canon import BadRequest
from repro.serve.client import HttpClient
from repro.serve.jobs import _run_one
from repro.serve.metrics import ServeMetrics


# ----------------------------------------------------------------------
# canonicalization: equivalent requests -> one key
# ----------------------------------------------------------------------
def test_canonical_equivalence_one_key():
    a = canonical_point({"workload": "fft", "nprocs": 2, "size": "test"})
    variants = [
        {"size": "test", "workload": "fft", "nprocs": 2},      # reordered
        {"workload": "fft", "nprocs": 2.0, "size": "test"},    # float count
        {"workload": "fft", "cpus": [0, 1], "size": "test"},   # explicit default placement
        {"workload": "fft", "nprocs": 2, "size": "test", "config": {}},
        {"workload": "fft", "nprocs": 2, "size": "test", "variant": ""},
        # transport options never reach the key
        {"workload": "fft", "nprocs": 2, "size": "test", "stream": True,
         "ttl_s": 5},
    ]
    for spec in variants:
        assert canonical_point(spec).key == a.key, spec
    # the normalized spec is identical too (it is what the server echoes)
    assert canonical_point(variants[2]).spec == a.spec


def test_canonical_distinct_points_distinct_keys():
    base = {"workload": "fft", "nprocs": 2, "size": "test"}
    a = canonical_point(base)
    for change in (
        {"workload": "radix"},
        {"nprocs": 4, "cpus": []},
        {"cpus": [0, 4], "nprocs": 2},     # spread placement != consecutive
        {"size": "bench"},
        {"variant": "ablation"},
        {"config": {"nc_enabled": False}},
        {"config": {"geometry": [2, 2]}},
    ):
        spec = dict(base, **change)
        assert canonical_point(spec).key != a.key, spec


def test_canonical_config_override_order_irrelevant():
    a = canonical_point({"workload": "fft", "nprocs": 2, "size": "test",
                         "config": {"nc_enabled": False, "compute_scale": 2}})
    b = canonical_point({"workload": "fft", "nprocs": 2, "size": "test",
                         "config": {"compute_scale": 2.0, "nc_enabled": False}})
    assert a.key == b.key


@pytest.mark.parametrize("spec", [
    {"nprocs": 2},                                            # no workload
    {"workload": "nope", "nprocs": 2},                        # unknown workload
    {"workload": "fft"},                                      # no nprocs/cpus
    {"workload": "fft", "nprocs": 0},
    {"workload": "fft", "nprocs": True},                      # bool is not int
    {"workload": "fft", "nprocs": 2, "size": "huge"},
    {"workload": "fft", "nprocs": 3, "cpus": [0, 1]},         # disagreement
    {"workload": "fft", "cpus": [0, 0]},                      # duplicate cpu
    {"workload": "fft", "nprocs": 2, "turbo": True},          # unknown field
    {"workload": "fft", "nprocs": 2, "config": {"warp": 9}},  # unknown config
    {"workload": "fft", "nprocs": 2, "config": {"nc_enabled": "yes"}},
    {"workload": "fft", "nprocs": 10_000},                    # too many cpus
    {"workload": "fft", "nprocs": 2, "cpus": [0, 99]},        # cpu id range
    "not an object",
])
def test_canonical_rejects(spec):
    with pytest.raises(BadRequest):
        canonical_point(spec)


# ----------------------------------------------------------------------
# executors for deterministic pool behaviour
# ----------------------------------------------------------------------
class CountingExecutor:
    """A thread pool that counts submissions (simulations really run)."""

    def __init__(self) -> None:
        self._pool = concurrent.futures.ThreadPoolExecutor(max_workers=2)
        self.submissions = 0

    def submit(self, fn, *args):
        self.submissions += 1
        return self._pool.submit(fn, *args)

    def shutdown(self, wait=True, cancel_futures=False):
        self._pool.shutdown(wait=wait)


class StallExecutor:
    """Futures the test completes by hand; nothing ever runs."""

    def __init__(self) -> None:
        self.calls = []  # (payloads, future)

    def submit(self, fn, payloads):
        fut = concurrent.futures.Future()
        self.calls.append((payloads, fut))
        return fut

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def _manager(tmp_path, executor, **kw):
    kw.setdefault("workers", 1)
    kw.setdefault("queue_depth", 2)
    kw.setdefault("batch_max", 4)
    return JobManager(
        cache=RunCache(root=tmp_path / "cache"),
        executor=executor,
        **kw,
    )


async def _spin_until(predicate, timeout=5.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        assert loop.time() < deadline, "condition never became true"
        await asyncio.sleep(0.01)


# ----------------------------------------------------------------------
# coalescing: N identical concurrent requests -> ONE pool submission
# ----------------------------------------------------------------------
def test_coalescing_one_pool_submission(tmp_path):
    async def main():
        ex = CountingExecutor()
        mgr = _manager(tmp_path, ex, queue_depth=8)
        await mgr.start()
        cp = canonical_point({"workload": "fft", "nprocs": 1, "size": "test"})

        first = mgr.submit(cp)
        others = [mgr.submit(cp) for _ in range(5)]
        assert first[0] == "run"
        assert all(src == "coalesced" for src, _ in others)
        # every waiter shares the one in-flight job (and its future)
        assert all(job is first[1] for _, job in others)

        records = await asyncio.gather(
            *[asyncio.shield(job.future) for _, job in [first] + others]
        )
        assert len({id(r) for r in records}) == 1  # one shared record
        assert ex.submissions == 1
        assert mgr.metrics.pool_submissions == 1
        assert mgr.metrics.coalesced == 5
        for _, job in [first] + others:
            mgr.release_waiter(job)

        # the point is cached now: a fresh submit is a hit, still 1 submission
        src, record = mgr.submit(cp)
        assert src == "hit"
        assert record.to_json() == records[0].to_json()
        assert ex.submissions == 1
        assert await mgr.drain(timeout=5)

    asyncio.run(main())


# ----------------------------------------------------------------------
# backpressure: queue at depth cap -> Backpressure (HTTP 429)
# ----------------------------------------------------------------------
def test_backpressure_at_depth_cap(tmp_path):
    async def main():
        ex = StallExecutor()
        mgr = _manager(tmp_path, ex, queue_depth=2, batch_max=1)
        await mgr.start()

        def spec(i):
            return canonical_point({"workload": "fft", "nprocs": 1,
                                    "size": "test", "variant": f"v{i}"})

        # first job is pulled by the dispatcher and stalls in the "pool";
        # the next two fill the depth-2 queue; the fourth must bounce
        jobs = [mgr.submit(spec(0))[1]]
        await _spin_until(lambda: ex.calls)
        jobs += [mgr.submit(spec(1))[1], mgr.submit(spec(2))[1]]
        with pytest.raises(Backpressure) as excinfo:
            mgr.submit(spec(3))
        assert excinfo.value.retry_after >= 1.0
        # the bounced job was never admitted: no miss counted for it
        assert mgr.metrics.cache_misses == 3

        # unstall everything so drain can finish cleanly
        ok = _run_one({"point": spec(0).point.__class__(
            workload="fft", nprocs=1, size="test")})
        assert ok["ok"]
        while ex.calls or any(not j.future.done() for j in jobs):
            for payloads, fut in ex.calls:
                fut.set_result([ok] * len(payloads))
            ex.calls.clear()
            await asyncio.sleep(0.02)
        for j in jobs:
            mgr.release_waiter(j)
        assert await mgr.drain(timeout=5)

    asyncio.run(main())


# ----------------------------------------------------------------------
# TTL: a queued, unsubmitted job expires
# ----------------------------------------------------------------------
def test_queued_job_expires_past_ttl(tmp_path):
    async def main():
        ex = StallExecutor()
        mgr = _manager(tmp_path, ex, queue_depth=4, batch_max=1)
        await mgr.start()
        blocker = canonical_point({"workload": "fft", "nprocs": 1,
                                   "size": "test", "variant": "blocker"})
        doomed = canonical_point({"workload": "fft", "nprocs": 1,
                                  "size": "test", "variant": "doomed"})
        _, bjob = mgr.submit(blocker)
        await _spin_until(lambda: ex.calls)         # blocker occupies the pool
        _, djob = mgr.submit(doomed, ttl_s=0.01)    # waits in queue

        with pytest.raises(JobExpired):
            await asyncio.shield(djob.future)
        assert mgr.metrics.jobs_expired == 1
        mgr.release_waiter(djob)

        ok = _run_one({"point": blocker.point})
        ex.calls[0][1].set_result([ok])
        await asyncio.shield(bjob.future)
        mgr.release_waiter(bjob)
        assert await mgr.drain(timeout=5)

    asyncio.run(main())


# ----------------------------------------------------------------------
# drain: in-flight jobs finish, new work bounces
# ----------------------------------------------------------------------
def test_drain_finishes_inflight_and_rejects_new(tmp_path):
    async def main():
        ex = StallExecutor()
        mgr = _manager(tmp_path, ex, queue_depth=4)
        await mgr.start()
        cp = canonical_point({"workload": "fft", "nprocs": 1, "size": "test"})
        src, job = mgr.submit(cp)
        assert src == "run"
        await _spin_until(lambda: ex.calls)

        drain_task = asyncio.ensure_future(mgr.drain(timeout=10))
        await _spin_until(lambda: mgr.draining)
        other = canonical_point({"workload": "radix", "nprocs": 1,
                                 "size": "test"})
        with pytest.raises(Draining):
            mgr.submit(other)
        # coalescing onto already-admitted work stays allowed while draining
        assert mgr.submit(cp)[0] == "coalesced"
        mgr.release_waiter(job)

        assert not drain_task.done()   # drain waits for the in-flight job
        ok = _run_one({"point": cp.point})
        ex.calls[0][1].set_result([ok])
        record = await asyncio.shield(job.future)
        mgr.release_waiter(job)
        assert await drain_task        # clean drain
        # the in-flight result landed in the cache on the way out
        assert mgr.cache.get(cp.key).to_json() == record.to_json()

    asyncio.run(main())


# ----------------------------------------------------------------------
# abandoned jobs never reach the pool
# ----------------------------------------------------------------------
def test_abandoned_job_dropped_before_pool(tmp_path):
    async def main():
        ex = StallExecutor()
        mgr = _manager(tmp_path, ex)
        await mgr.start()
        cp = canonical_point({"workload": "fft", "nprocs": 1, "size": "test"})
        _, job = mgr.submit(cp)
        mgr.release_waiter(job)        # client gone before the dispatcher ran
        await asyncio.sleep(0.1)
        assert ex.calls == []
        assert mgr.metrics.jobs_dropped == 1
        assert mgr.metrics.pool_submissions == 0
        assert await mgr.drain(timeout=5)

    asyncio.run(main())


# ----------------------------------------------------------------------
# /metrics: the serve exposition passes the same validator the machine
# exposition is held to (tests/test_obs.py)
# ----------------------------------------------------------------------
_METRIC_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")


def _validate_prometheus(text: str) -> set:
    helped, typed, sampled = set(), set(), set()
    for line in text.splitlines():
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
        elif line.startswith("# TYPE "):
            name, mtype = line.split()[2:4]
            assert mtype in ("counter", "gauge")
            assert name in helped, f"TYPE before HELP for {name}"
            typed.add(name)
        elif line:
            name = line.split("{")[0].split(" ")[0]
            assert _METRIC_RE.fullmatch(name), f"illegal metric {name!r}"
            assert name in typed, f"sample before TYPE for {name}"
            name_part, _, value = line.rpartition(" ")
            float(value)
            sampled.add(name)
    assert helped == typed  # HELP/TYPE always come as a pair
    return sampled


def test_serve_prometheus_passes_golden_validator():
    m = ServeMetrics()
    m.record_request("POST /run", 200)
    m.record_request("POST /run", 429)
    m.record_request("GET /metrics", 200)
    m.cache_hits, m.cache_misses, m.coalesced = 19, 1, 7
    for i in range(10):
        m.record_latency("hit", 0.001 * (i + 1))
        m.record_latency("run", 0.1 * (i + 1))
    text = serve_to_prometheus(m.snapshot())
    sampled = _validate_prometheus(text)
    assert "numachine_serve_requests_total" in sampled
    assert "numachine_serve_cache_hit_ratio" in sampled
    assert "numachine_serve_request_latency_seconds" in sampled
    assert 'quantile="0.99"' in text
    assert f"numachine_serve_cache_hit_ratio {19 / 20}" in text


def test_serve_metrics_hit_ratio_empty_is_zero():
    assert ServeMetrics().hit_ratio() == 0.0


# ----------------------------------------------------------------------
# the whole stack over a real socket and a real process pool
# ----------------------------------------------------------------------
def test_http_end_to_end(tmp_path):
    async def main():
        mgr = JobManager(
            workers=2, queue_depth=8, batch_max=4,
            cache=RunCache(root=tmp_path / "cache"),
        )
        server = Server("127.0.0.1", 0, mgr)
        host, port = await server.start()
        client = HttpClient(host, port)

        status, _h, health = await client.request_json("GET", "/healthz")
        assert (status, health["status"]) == (200, "ok")

        spec = {"workload": "fft", "nprocs": 2, "size": "test"}
        status, headers, body = await client.request_json("POST", "/run", spec)
        assert status == 200 and headers["x-cache"] == "run"
        assert body["source"] == "run" and body["record"]["workload"] == "fft"

        # same point again: a cache hit, same record bytes
        status, headers, hot = await client.request_json("POST", "/run", spec)
        assert status == 200 and headers["x-cache"] == "hit"
        assert hot["record"] == body["record"] and hot["key"] == body["key"]

        # a streamed cold point: queued, telemetry..., result
        sspec = {"workload": "fft", "nprocs": 1, "size": "test",
                 "stream": True}
        events, first = [], None
        async for item in client.stream_lines("POST", "/run", sspec):
            if first is None:
                first = item
                continue
            events.append(item)
        assert first[0] == 200
        assert first[1]["content-type"].startswith("application/x-ndjson")
        assert events[0]["event"] == "queued"
        assert events[-1]["event"] == "result"
        assert any(e["event"] == "telemetry" for e in events)

        # the streamed result is an *observed* run: simulated work and
        # statistics match an unobserved inline run exactly, the sampler's
        # own events are reported and account for the whole event delta,
        # and the observed record was NOT cached under the canonical key
        scp = canonical_point({"workload": "fft", "nprocs": 1,
                               "size": "test"})
        plain = run_point(scp.point, cache=None)
        streamed = events[-1]["record"]
        assert streamed["parallel_time_ns"] == plain.parallel_time_ns
        assert streamed["memory_stats"] == plain.memory_stats
        assert streamed["nc_stats"] == plain.nc_stats
        ticks = events[-1]["sampler_ticks"]
        assert ticks >= 1
        assert streamed["events"] == plain.events + ticks
        assert mgr.cache.get(scp.key) is None
        await client.close()

        # sweep with an intra-sweep duplicate
        client = HttpClient(host, port)
        status, _h, sw = await client.request_json("POST", "/sweep", {
            "points": [spec, {"workload": "fft", "nprocs": 1, "size": "test"},
                       dict(spec)],
        })
        assert status == 200
        sources = [r["source"] for r in sw["results"]]
        assert sources[0] == "hit" and sources[2] in ("hit", "coalesced")
        assert sw["results"][0]["key"] == sw["results"][2]["key"]

        # error paths
        status, _h, err = await client.request_json(
            "POST", "/run", {"workload": "nope", "nprocs": 2})
        assert status == 400 and "nope" in err["error"]
        status, _h, _b = await client.request_json("GET", "/nowhere")
        assert status == 404
        status, _h, _b = await client.request_json("GET", "/run")
        assert status == 405

        # /metrics passes the exposition validator and shows our traffic
        status, headers, text = await client.request("GET", "/metrics")
        assert status == 200 and headers["content-type"].startswith("text/plain")
        sampled = _validate_prometheus(text.decode())
        assert "numachine_serve_requests_total" in sampled
        status, _h, stats = await client.request_json("GET", "/stats")
        assert status == 200 and stats["cache"]["hits"] >= 2

        await client.close()
        assert await server.drain_and_stop(timeout=30)

    asyncio.run(main())


# ----------------------------------------------------------------------
# ledger schema 4: serving entries are distinguishable
# ----------------------------------------------------------------------
def test_ledger_kind_field():
    assert LEDGER_SCHEMA == 4
    assert make_entry("bench_engine", {})["kind"] == "simulation"
    entry = make_entry("bench_serve", {"rps": 1.0}, kind="serving")
    assert entry["kind"] == "serving" and entry["schema"] == 4
    with pytest.raises(ValueError):
        make_entry("bench_serve", {}, kind="mystery")
    json.dumps(entry)  # the envelope stays JSON-serializable
