"""Hardware/software interaction tests (paper §3.2)."""

from repro import Barrier, Machine, Read, SoftOp, Write
from repro.core.states import CacheState, LineState

from conftest import small_config


def cpus_of(m, station):
    per = m.config.cpus_per_station
    return list(range(station * per, (station + 1) * per))


def test_software_writeback_pushes_data_and_keeps_shared_copy():
    cfg = small_config()
    m = Machine(cfg)
    r = m.allocate(4096, placement="local:1")
    p0 = cpus_of(m, 0)[0]

    def prog():
        yield Write(r.addr(0), 31)
        yield SoftOp("writeback", {"addr": r.addr(0)})
        v = yield Read(r.addr(0))       # still a (shared) hit
        assert v == 31

    m.run({p0: prog()})
    la = m.config.line_addr(r.addr(0))
    assert m.cpus[p0].l2.lookup(la).state is CacheState.SHARED
    # the data reached the NC (written back locally, fig 6 LocalWrBack)
    line = m.stations[0].nc.array.probe(la)
    assert line is not None and line.state is LineState.LV
    assert line.data[0] == 31


def test_invalidate_self():
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:0")

    def prog():
        yield Read(r.addr(0))
        yield SoftOp("invalidate_self", {"addr": r.addr(0)})

    m.run({0: prog()})
    la = m.config.line_addr(r.addr(0))
    assert m.cpus[0].l2.lookup(la) is None


def test_kill_obtains_clean_exclusive_at_memory():
    """§3.2: 'invalidate shared copies ... kill dirty copies, and obtain (at
    memory) a clean exclusive copy'."""
    cfg = small_config()
    m = Machine(cfg)
    r = m.allocate(4096, placement="local:0")
    remote = cpus_of(m, 1)[0]
    killer = cpus_of(m, 0)[0]
    allc = (remote, killer)

    def sharer():
        yield Read(r.addr(0))
        yield Barrier(0, allc)
        yield Barrier(1, allc)

    def kill():
        yield Barrier(0, allc)
        yield SoftOp("kill", {"addr": r.addr(0)})
        yield Barrier(1, allc)

    m.run({remote: sharer(), killer: kill()})
    la = m.config.line_addr(r.addr(0))
    e = m.stations[0].memory.directory.entry(la)
    assert e.state is LineState.LV
    assert e.proc_mask == 0
    # the remote sharer's copies are gone
    assert m.cpus[remote].l2.lookup(la) is None


def test_block_op_kill_range_interrupts_initiator():
    cfg = small_config()
    m = Machine(cfg)
    nlines = 8
    r = m.allocate(nlines * cfg.line_bytes, placement="local:1")
    p0 = cpus_of(m, 0)[0]

    def prog():
        for i in range(nlines):
            yield Read(r.addr(i * cfg.line_bytes))
        yield SoftOp("block_op", {
            "base": r.addr(0), "nlines": nlines, "op": "kill",
        })

    m.run({p0: prog()})
    la = m.config.line_addr(r.addr(0))
    assert m.cpus[p0].l2.lookup(la) is None
    assert m.memory_stats().get("block_ops", 0) == 1
    assert m.memory_stats().get("kills", 0) >= nlines


def test_block_copy_moves_data_coherently():
    cfg = small_config()
    m = Machine(cfg)
    nlines = 8
    src = m.allocate(nlines * cfg.line_bytes, placement="local:0")
    dst = m.allocate(nlines * cfg.line_bytes, placement="local:1")

    def prog():
        for i in range(nlines):
            yield Write(src.addr(i * cfg.line_bytes), 500 + i)
        yield SoftOp("block_copy", {
            "src": src.addr(0), "dst": dst.addr(0), "nlines": nlines,
        })
        for i in range(nlines):
            v = yield Read(dst.addr(i * cfg.line_bytes))
            assert v == 500 + i, (i, v)

    m.run({0: prog()})
    assert m.memory_stats().get("block_copy_completed", 0) == 1


def test_zero_page_in_cache():
    cfg = small_config()
    m = Machine(cfg)
    page = m.allocate(cfg.page_bytes, placement="local:0")
    nlines = cfg.page_bytes // cfg.line_bytes

    def prog():
        yield Write(page.addr(0), 12345)
        yield SoftOp("zero_page", {"base": page.addr(0), "nlines": nlines})
        for i in range(nlines):
            v = yield Read(page.addr(i * cfg.line_bytes))
            assert v == 0, (i, v)

    m.run({0: prog()})
    # the zeroed lines were created dirty in the cache without memory reads
    la = m.config.line_addr(page.addr(0))
    assert m.cpus[0].l2.lookup(la).state is CacheState.DIRTY


def test_update_shared_multicast():
    """The eureka sequence: spinners see the new value without a miss storm
    and the home DRAM holds the updated line."""
    cfg = small_config()
    m = Machine(cfg)
    r = m.allocate(4096, placement="local:1")
    writer = cpus_of(m, 0)[0]
    spinner = cpus_of(m, 2)[0]
    allc = (writer, spinner)

    def w():
        yield Read(r.addr(0))         # hold a copy
        yield Barrier(0, allc)
        result = yield SoftOp("update_shared", {"addr": r.addr(0), "value": 88})
        assert result == "updated"
        yield Barrier(1, allc)

    def s():
        v = yield Read(r.addr(0))
        assert v == 0
        yield Barrier(0, allc)
        while True:
            v = yield Read(r.addr(0))
            if v:
                break
        assert v == 88
        yield Barrier(1, allc)

    m.run({writer: w(), spinner: s()})
    la = m.config.line_addr(r.addr(0))
    assert m.stations[1].memory.read_line(la)[0] == 88
    assert m.memory_stats().get("soft_updates", 0) == 1
    assert m.memory_stats().get("soft_dir_locks", 0) == 1


def test_multicast_interrupt_and_wait():
    cfg = small_config()
    m = Machine(cfg)
    targets = [2, 5]

    def master():
        yield SoftOp("multicast_interrupt", {"cpus": targets, "bits": 0b1000})
        yield Barrier(0, tuple([0] + targets))

    def listener():
        bits = yield SoftOp("wait_interrupt", {})
        assert bits == 0b1000
        yield Barrier(0, tuple([0] + targets))

    programs = {0: master()}
    for t in targets:
        programs[t] = listener()
    m.run(programs)


def test_dir_lock_read_returns_state():
    """Coherence bypass: software can atomically lock + read the directory."""
    cfg = small_config()
    m = Machine(cfg)
    r = m.allocate(4096, placement="local:1")
    p0 = cpus_of(m, 0)[0]
    seen = {}

    def prog():
        yield Read(r.addr(0))
        info = yield SoftOp("update_shared", {"addr": r.addr(0), "value": 3})
        seen["result"] = info

    m.run({p0: prog()})
    assert seen["result"] == "updated"


def test_multicast_writeback_to_stations():
    """§3.2: software-supplied routing masks for write-backs place the data
    directly into a set of network caches."""
    cfg = small_config()
    m = Machine(cfg)
    r = m.allocate(4096, placement="local:1")
    writer = cpus_of(m, 0)[0]
    consumer = cpus_of(m, 2)[0]
    allc = (writer, consumer)

    def w():
        yield Write(r.addr(0), 64)
        yield SoftOp("multicast_writeback",
                     {"addr": r.addr(0), "stations": [2]})
        yield Barrier(0, allc)

    def c():
        yield Barrier(0, allc)
        v = yield Read(r.addr(0))
        assert v == 64

    m.run({writer: w(), consumer: c()})
    # the consumer's read was satisfied from its own NC (pre-pushed)
    s = m.nc_stats()
    assert s.get("multicast_fills", 0) >= 1
    assert s.get("hits", 0) >= 1
