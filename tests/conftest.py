"""Shared fixtures and helpers for the NUMAchine test suite."""

from __future__ import annotations

import pytest

from repro import Machine, MachineConfig
from repro.interconnect.routing import Geometry


def small_config(**overrides) -> MachineConfig:
    """The standard test machine: 2x2 stations, 2 CPUs each (8 CPUs),
    deliberately tiny caches so capacity/conflict behaviour appears."""
    cfg = MachineConfig.small()
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


def tiny_config(**overrides) -> MachineConfig:
    """A 2-station single-ring machine with 1 CPU per station."""
    cfg = MachineConfig(
        geometry=Geometry((2,), processors_per_station=1),
        l1_size_bytes=1024,
        l2_size_bytes=8 * 1024,
        nc_size_bytes=32 * 1024,
        station_mem_bytes=1 << 22,
    )
    for key, value in overrides.items():
        setattr(cfg, key, value)
    return cfg


@pytest.fixture
def machine() -> Machine:
    return Machine(small_config())


@pytest.fixture
def tiny_machine() -> Machine:
    return Machine(tiny_config())


def run_programs(machine: Machine, programs):
    """Run and return the result; programs is {cpu_id: generator}."""
    return machine.run(programs)


def single(machine: Machine, cpu: int, *ops):
    """Run a straight-line list of ops on one cpu; returns read values."""
    values = []

    def gen():
        for op in ops:
            v = yield op
            values.append(v)

    machine.run({cpu: gen()})
    return values
