"""The simulator self-profiler (repro.obs.profile).

The profiler re-classes the engine, so the contract is exactness: every
event attributed, ``(events_run, now)`` bit-identical to an unprofiled
run, clean install/uninstall, and a Perfetto-loadable export — validated
with the same schema checks the transaction-trace export gets.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import Profiler
from repro.obs.profile import _STATE, _ProfiledEngine
from repro.sim.engine import Engine
from repro.system.config import MachineConfig
from repro.system.machine import Machine
from repro.workloads.synthetic import HotSpot


def _profiled_run(backend: str, sample_every: int = 1, nprocs: int = 8):
    machine = Machine(MachineConfig.prototype(), backend=backend)
    prof = Profiler(sample_every=sample_every).install(machine.engine)
    HotSpot(words=16, ops=20).run(machine, nprocs=nprocs)
    prof.uninstall()
    return machine, prof


# ----------------------------------------------------------------------
# attribution
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["interp", "elab"])
def test_every_event_attributed_and_run_unperturbed(backend):
    plain = Machine(MachineConfig.prototype(), backend=backend)
    HotSpot(words=16, ops=20).run(plain, nprocs=8)
    machine, prof = _profiled_run(backend)
    # profiling never schedules or reorders: bit-identical run
    assert machine.engine.events_run == plain.engine.events_run
    assert machine.engine.now == plain.engine.now
    summ = prof.summary()
    assert summ["events"] == machine.engine.events_run
    assert summ["sites"], "no pump sites attributed"
    # hottest-first ordering, shares sum to ~1
    est = [s["est_wall_s"] for s in summ["sites"]]
    assert est == sorted(est, reverse=True)
    assert abs(sum(s["share"] for s in summ["sites"]) - 1.0) < 1e-9


def test_elab_backend_shows_generated_site_names():
    machine, prof = _profiled_run("elab")
    assert machine.backend == "elab"
    sites = {s["site"] for s in prof.summary()["sites"]}
    assert any("Elab" in s or s.startswith("_") for s in sites), sites


def test_sample_every_thins_timing_but_not_counts():
    m1, every1 = _profiled_run("interp", sample_every=1)
    m4, every4 = _profiled_run("interp", sample_every=4)
    s1, s4 = every1.summary(), every4.summary()
    assert s1["events"] == s4["events"] == m4.engine.events_run
    assert sum(s["timed"] for s in s1["sites"]) == s1["events"]
    timed4 = sum(s["timed"] for s in s4["sites"])
    assert timed4 == s4["events"] // 4
    del m1


# ----------------------------------------------------------------------
# install / uninstall hygiene
# ----------------------------------------------------------------------
def test_install_uninstall_restores_engine_class():
    machine = Machine(MachineConfig.small(stations_per_ring=2, rings=2, cpus=2))
    engine = machine.engine
    prof = Profiler().install(engine)
    assert type(engine) is _ProfiledEngine
    assert id(engine) in _STATE
    prof.uninstall()
    assert type(engine) is Engine
    assert id(engine) not in _STATE
    prof.uninstall()  # idempotent


def test_double_install_raises():
    m1 = Machine(MachineConfig.small(stations_per_ring=2, rings=2, cpus=2))
    m2 = Machine(MachineConfig.small(stations_per_ring=2, rings=2, cpus=2))
    prof = Profiler().install(m1.engine)
    try:
        with pytest.raises(RuntimeError):
            prof.install(m2.engine)  # one profiler, one engine
        with pytest.raises(RuntimeError):
            Profiler().install(m1.engine)  # one engine, one profiler
    finally:
        prof.uninstall()


def test_context_manager_uninstalls():
    machine = Machine(MachineConfig.small(stations_per_ring=2, rings=2, cpus=2))
    with Profiler().install(machine.engine):
        assert type(machine.engine) is _ProfiledEngine
    assert type(machine.engine) is Engine


# ----------------------------------------------------------------------
# Perfetto export (scripts/check_elab.py-style validation)
# ----------------------------------------------------------------------
def test_chrome_trace_schema(tmp_path):
    _machine, prof = _profiled_run("elab")
    doc = prof.chrome_trace()
    events = doc["traceEvents"]
    assert events
    json.loads(json.dumps(doc))  # round-trips
    tids = set()
    ends = {1: [], 2: []}
    for ev in events:
        assert ev["ph"] in ("X", "M")
        assert ev["pid"] == 3
        assert isinstance(ev["name"], str) and ev["name"]
        if ev["ph"] == "X":
            assert ev["ts"] >= 0 and ev["dur"] > 0
            assert ev["tid"] in (1, 2)
            tids.add(ev["tid"])
            ends[ev["tid"]].append((ev["ts"], ev["ts"] + ev["dur"]))
    assert tids == {1, 2}, "handler and component tracks both present"
    # slices are laid end to end on each track (a one-level flamegraph)
    for track in (1, 2):
        spans = sorted(ends[track])
        for (_a, b), (c, _d) in zip(spans, spans[1:]):
            assert abs(b - c) < 1e-6

    path = tmp_path / "profile.json"
    prof.write_chrome(path)
    assert json.loads(path.read_text())["traceEvents"]
    spath = tmp_path / "summary.json"
    prof.write_summary(spath)
    assert json.loads(spath.read_text())["sites"]


def test_heap_scheduler_branch(monkeypatch):
    monkeypatch.setenv("NUMACHINE_SCHED", "heap")
    machine, prof = _profiled_run("interp", nprocs=4)
    assert machine.engine._queue is not None, "heap scheduler not active"
    assert prof.summary()["events"] == machine.engine.events_run
