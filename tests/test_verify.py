"""Tests for the runtime coherence invariant checker (repro.verify).

Two halves:

* **Firing tests** — for each invariant, build the smallest illegal state
  by hand (directly mutating directories / caches, then calling the
  checker hook a real module would call) and assert the checker raises an
  :class:`InvariantViolation` naming that invariant.  The simulator never
  produces these states on its own, which is the point: the checker must
  catch protocol bugs, and the only way to test that is to commit one.
* **Clean-run + bit-identity tests** — real workloads at P=4 and P=16
  complete with the checker attached, every invariant class actually gets
  exercised, and a checked run replays the *exact* same event stream as
  an unchecked one (the read-only guarantee).
"""

from __future__ import annotations

import pytest

from repro import Machine, MachineConfig
from repro.cache.nc_array import NCLine
from repro.core.states import CacheState, LineState
from repro.verify import CoherenceChecker, InvariantViolation
from repro.workloads.lu import LUContiguous
from repro.workloads.synthetic import HotSpot

from conftest import small_config


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
@pytest.fixture
def checked_machine():
    machine = Machine(small_config())
    checker = machine.attach_verifier(CoherenceChecker())
    return machine, checker


def _local_line(machine, station=0):
    """A line address homed at ``station``, plus its home memory module."""
    region = machine.allocate(64, placement=f"local:{station}")
    la = machine.config.line_addr(region.addr(0))
    return la, machine.stations[station].memory


def expect_violation(invariant: str):
    return pytest.raises(InvariantViolation, match=rf"\[{invariant}\]")


# ----------------------------------------------------------------------
# firing tests: one hand-built illegal state per invariant
# ----------------------------------------------------------------------
def test_single_writer_fires(checked_machine):
    machine, checker = checked_machine
    la, _ = _local_line(machine)
    writer = machine.stations[0].cpus[0]
    remote = machine.stations[1].cpus[0]
    writer.l2.install(la, CacheState.DIRTY, [0])
    remote.l2.install(la, CacheState.DIRTY, [0])  # two dirty owners: illegal
    with expect_violation("single-writer"):
        checker.cpu_fill(writer, la, exclusive=True, consumed=True)


def test_single_writer_fires_on_stale_nc_claim(checked_machine):
    machine, checker = checked_machine
    la, _ = _local_line(machine)
    writer = machine.stations[0].cpus[0]
    writer.l2.install(la, CacheState.DIRTY, [0])
    # the writer's own NC still claims a valid copy of the line
    machine.stations[0].nc.array.insert(NCLine(addr=la, state=LineState.GV))
    with expect_violation("single-writer"):
        checker.cpu_fill(writer, la, exclusive=True, consumed=True)


def test_writer_reader_exclusion_fires(checked_machine):
    machine, checker = checked_machine
    la, _ = _local_line(machine)
    writer, reader = machine.stations[0].cpus[:2]
    writer.l2.install(la, CacheState.DIRTY, [0])
    reader.l2.install(la, CacheState.SHARED, [0])  # same-station reader
    with expect_violation("writer-reader-exclusion"):
        checker.cpu_fill(writer, la, exclusive=True, consumed=True)


def test_writer_reader_exclusion_fires_on_read_fill(checked_machine):
    machine, checker = checked_machine
    la, _ = _local_line(machine)
    reader, writer = machine.stations[0].cpus[:2]
    writer.l2.install(la, CacheState.DIRTY, [0])
    reader.l2.install(la, CacheState.SHARED, [0])
    with expect_violation("writer-reader-exclusion"):
        checker.cpu_fill(reader, la, exclusive=False, consumed=True)


def test_proc_mask_coverage_fires(checked_machine):
    machine, checker = checked_machine
    la, mem = _local_line(machine)
    entry = mem.directory.entry(la)
    entry.state = LineState.LV
    entry.proc_mask = 0  # ...but a local L2 holds a readable copy
    machine.stations[0].cpus[1].l2.install(la, CacheState.SHARED, [0])
    with expect_violation("proc-mask-coverage"):
        checker.mem_settled(mem, la)


def test_routing_mask_coverage_fires_on_empty_gi_mask(checked_machine):
    machine, checker = checked_machine
    la, mem = _local_line(machine)
    entry = mem.directory.entry(la)
    entry.state = LineState.GI  # a remote owner exists...
    mem.directory.clear_stations(entry)  # ...but the mask names nobody
    with expect_violation("routing-mask-coverage"):
        checker.mem_settled(mem, la)


def test_routing_mask_coverage_fires_on_uncovered_nc_copy(checked_machine):
    machine, checker = checked_machine
    la, mem = _local_line(machine)
    entry = mem.directory.entry(la)
    entry.state = LineState.GV
    mem.directory.clear_stations(entry)  # mask says: no remote copies
    # ...yet a remote NC holds the line valid, with no invalidation in flight
    machine.stations[1].nc.array.insert(NCLine(addr=la, state=LineState.GV))
    with expect_violation("routing-mask-coverage"):
        checker.mem_settled(mem, la)


def test_legal_transition_fires_on_gv_to_lv(checked_machine):
    machine, checker = checked_machine
    la, mem = _local_line(machine)
    entry = mem.directory.entry(la)
    entry.state = LineState.GV
    checker.mem_settled(mem, la)  # observe GV, unlocked
    entry.state = LineState.LV  # GV -> LV without a locked round: illegal
    with expect_violation("legal-transition"):
        checker.mem_settled(mem, la)


def test_legal_transition_fires_on_locked_state_change(checked_machine):
    machine, checker = checked_machine
    la, mem = _local_line(machine)
    entry = mem.directory.entry(la)
    entry.state = LineState.LV
    entry.locked = True
    checker.mem_settled(mem, la)
    entry.state = LineState.GI  # state must be frozen while locked
    with expect_violation("legal-transition"):
        checker.mem_settled(mem, la)


def test_locked_liveness_fires_at_quiescence(checked_machine):
    machine, checker = checked_machine
    la, mem = _local_line(machine)
    entry = mem.directory.entry(la)
    entry.locked = True  # still locked after the run drained
    with expect_violation("locked-liveness"):
        checker.assert_quiescent()


def test_locked_liveness_fires_on_stuck_lock(checked_machine):
    machine, checker = checked_machine
    checker.max_locked_ticks = -1  # any locked dwell overruns the bound
    la, mem = _local_line(machine)
    entry = mem.directory.entry(la)
    entry.state = LineState.LV
    entry.locked = True
    with expect_violation("locked-liveness"):
        checker.mem_settled(mem, la)


def test_sc_blocking_fires_on_double_issue(checked_machine):
    machine, checker = checked_machine
    cpu = machine.cpus[0]
    checker.cpu_issue(cpu, 0x100)
    with expect_violation("sc-blocking"):
        checker.cpu_issue(cpu, 0x200)  # second miss while one outstanding


def test_nonsink_priority_fires_on_credit_overflow(checked_machine):
    machine, checker = checked_machine
    ri = machine.stations[0].ring_interface
    ri._nonsink_credits = ri.nonsink_limit + 1
    with expect_violation("nonsink-priority"):
        checker.ri_credit(ri)


def test_nonsink_priority_fires_on_wrong_drain_order(checked_machine):
    machine, checker = checked_machine
    ri = machine.stations[0].ring_interface
    ri.sink_q.push(object(), machine.engine.now)
    with expect_violation("nonsink-priority"):
        checker.ri_drain(ri, None, "nonsink")


def test_violation_carries_reproduction_context(checked_machine):
    machine, checker = checked_machine
    checker.set_seed(12345)
    cpu = machine.cpus[0]
    checker.cpu_issue(cpu, 0x100)
    with pytest.raises(InvariantViolation) as exc_info:
        checker.cpu_issue(cpu, 0x200)
    exc = exc_info.value
    assert exc.invariant == "sc-blocking"
    assert exc.seed == 12345
    assert exc.line_addr == 0x200
    assert "seed=12345" in str(exc)


# ----------------------------------------------------------------------
# clean runs: real workloads never trip the checker
# ----------------------------------------------------------------------
def _checked_run(workload, nprocs):
    cfg = MachineConfig.small(stations_per_ring=2, rings=2, cpus=4)
    machine = Machine(cfg)
    checker = machine.attach_verifier(CoherenceChecker())
    workload.run(machine, nprocs=nprocs)
    return machine, checker


@pytest.mark.parametrize("nprocs", [4, 16])
def test_hotspot_runs_clean_under_checker(nprocs):
    # hot_station=1 keeps the traffic remote even when all active CPUs fit
    # on station 0 (P=4), so the global states get exercised at both sizes
    machine, checker = _checked_run(HotSpot(words=16, ops=30, hot_station=1), nprocs)
    assert machine.engine.events_run > 0
    # every invariant class must actually have been exercised
    for inv in (
        "single-writer",
        "writer-reader-exclusion",
        "proc-mask-coverage",
        "routing-mask-coverage",
        "legal-transition",
        "locked-liveness",
        "sc-blocking",
        "nonsink-priority",
    ):
        assert checker.checks.get(inv, 0) > 0, f"{inv} never checked"


@pytest.mark.parametrize("nprocs", [4, 16])
def test_lu_runs_clean_under_checker(nprocs):
    machine, checker = _checked_run(LUContiguous(n=16, block=4), nprocs)
    assert machine.engine.events_run > 0
    assert sum(checker.checks.values()) > 0


# ----------------------------------------------------------------------
# the read-only guarantee: checked runs are bit-identical
# ----------------------------------------------------------------------
def _hotspot_fingerprint(nprocs, checked):
    cfg = MachineConfig.small(stations_per_ring=2, rings=2, cpus=4)
    machine = Machine(cfg)
    if checked:
        machine.attach_verifier(CoherenceChecker())
    HotSpot(words=16, ops=30).run(machine, nprocs=nprocs)
    return machine.engine.now, machine.engine.events_run


@pytest.mark.parametrize("nprocs", [4, 16])
def test_checker_is_bit_identical(nprocs):
    assert _hotspot_fingerprint(nprocs, checked=False) == _hotspot_fingerprint(
        nprocs, checked=True
    )
