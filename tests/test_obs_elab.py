"""The instrumented elaborated core's contract (observability x elab).

PR 6 made any observability hook force the interpreted path; now tracer /
probe / telemetry-stream runs execute on the *instrumented* variant of the
generated specialized core.  These tests pin the contract:

* an attached ``Observability`` selects ``backend_variant == "instr"``
  under the elab backend — no interp fallback;
* the tracer records but never schedules, so a traced instrumented run is
  bit-identical in ``(events_run, now)`` — and on the full snapshot — to
  the uninstrumented plain-elab run, at P=4/16/64;
* the traces and snapshots themselves match the interpreted backend
  exactly (same stamps, same counters, same FIFO wait statistics);
* probed runs (which do add sampling events) match the interpreted
  backend probed the same way;
* ``instrumented`` is a fingerprint axis: both variants coexist in the
  module store and codegen stays deterministic per variant;
* monitor / verifier / fault hooks still force interp.
"""

from __future__ import annotations

import pytest

from repro.elab import codegen
from repro.elab.ir import MachineIR, config_elab_fingerprint
from repro.monitor import Monitor
from repro.obs import Observability
from repro.system.config import MachineConfig
from repro.system.machine import Machine
from repro.workloads.synthetic import HotSpot


def _fingerprint(machine: Machine) -> tuple:
    return (
        machine.engine.events_run,
        machine.engine.now,
        machine.nc_stats(),
        machine.memory_stats(),
        machine.utilizations(),
        machine.ring_interface_delays(),
    )


def _run(backend: str, nprocs: int, obs_kwargs=None, ops: int = 20):
    machine = Machine(MachineConfig.prototype(), backend=backend)
    obs = None
    if obs_kwargs is not None:
        obs = Observability(**obs_kwargs).attach(machine)
    HotSpot(words=16, ops=ops).run(machine, nprocs=nprocs)
    return machine, obs


# ----------------------------------------------------------------------
# variant selection
# ----------------------------------------------------------------------
def test_obs_selects_instrumented_elab_no_interp_fallback():
    machine, obs = _run("elab", 16, {})
    assert machine.backend == "elab"
    assert machine.backend_variant == "instr"
    assert obs.tracer.finished
    assert obs.probes.samples > 0


def test_plain_elab_has_plain_variant_and_interp_has_none():
    m_elab, _ = _run("elab", 4, None)
    assert (m_elab.backend, m_elab.backend_variant) == ("elab", "plain")
    m_interp, _ = _run("interp", 4, {})
    assert (m_interp.backend, m_interp.backend_variant) == ("interp", None)


@pytest.mark.parametrize("attach", ["monitor", "verifier"])
def test_interp_only_hooks_still_force_interp(attach):
    machine = Machine(MachineConfig.prototype(), backend="elab")
    Observability().attach(machine)
    if attach == "monitor":
        machine.attach_monitor(Monitor())
    else:
        machine.attach_verifier()
    HotSpot(words=16, ops=10).run(machine, nprocs=4)
    assert machine.backend == "interp"
    assert machine.backend_variant is None


# ----------------------------------------------------------------------
# bit-identity: traced instrumented run == uninstrumented plain run
# ----------------------------------------------------------------------
@pytest.mark.parametrize("nprocs", [4, 16, 64])
def test_traced_instr_elab_bit_identical_to_plain_elab(nprocs):
    plain, _ = _run("elab", nprocs, None)
    traced, obs = _run("elab", nprocs, {"probes": False})
    assert plain.backend_variant == "plain"
    assert traced.backend_variant == "instr"
    # the tracer records, never schedules: identical event stream
    assert traced.engine.events_run == plain.engine.events_run
    assert traced.engine.now == plain.engine.now
    assert _fingerprint(traced) == _fingerprint(plain)
    assert obs.tracer.finished


def test_traced_instr_elab_matches_interp_traces_and_snapshot():
    interp, obs_i = _run("interp", 16, {"probes": False})
    elab, obs_e = _run("elab", 16, {"probes": False})
    assert elab.backend_variant == "instr"
    assert _fingerprint(elab) == _fingerprint(interp)
    # stamp-for-stamp identical transaction traces
    ti = sorted((r.to_json() for r in obs_i.tracer.finished),
                key=lambda d: d["tid"])
    te = sorted((r.to_json() for r in obs_e.tracer.finished),
                key=lambda d: d["tid"])
    assert te == ti
    # the full unified snapshot (counters, accumulators incl. FIFO wait
    # stats, fifo depth integrals, utilizations, trace summary) matches
    assert (elab.obs_snapshot(include_wall=False)
            == interp.obs_snapshot(include_wall=False))


def test_probed_instr_elab_matches_probed_interp():
    interp, _ = _run("interp", 16, {})
    elab, _ = _run("elab", 16, {})
    assert elab.backend_variant == "instr"
    # probes add their own sampling events identically on both backends
    assert elab.engine.events_run == interp.engine.events_run
    assert elab.engine.now == interp.engine.now
    assert (elab.obs_snapshot(include_wall=False)
            == interp.obs_snapshot(include_wall=False))


# ----------------------------------------------------------------------
# fingerprint axis + codegen determinism
# ----------------------------------------------------------------------
def test_instrumented_is_a_fingerprint_axis():
    cfg = MachineConfig.small(stations_per_ring=2, rings=2, cpus=2)
    assert (config_elab_fingerprint(cfg, instrumented=False)
            != config_elab_fingerprint(cfg, instrumented=True))


def test_instrumented_codegen_deterministic_and_distinct():
    cfg = lambda: MachineConfig.small(stations_per_ring=2, rings=2, cpus=2)
    ir_a = MachineIR.from_machine(Machine(cfg()), instrumented=True)
    ir_b = MachineIR.from_machine(Machine(cfg()), instrumented=True)
    a, b = codegen.generate_source(ir_a), codegen.generate_source(ir_b)
    assert a == b
    plain = codegen.generate_source(
        MachineIR.from_machine(Machine(cfg()), instrumented=False)
    )
    assert plain != a
    # the plain variant must carry no tracer site at all
    assert "tracer" not in plain
    assert "self.tracer" in a


def test_variant_switch_between_runs():
    """One machine: plain run, then attach obs and run again on the
    instrumented variant — the swap happens on the drained engine."""
    machine = Machine(MachineConfig.prototype(), backend="elab")
    HotSpot(words=16, ops=10).run(machine, nprocs=4)
    assert machine.backend_variant == "plain"
    obs = Observability(probes=False).attach(machine)
    HotSpot(words=16, ops=10).run(machine, nprocs=4)
    assert machine.backend_variant == "instr"
    assert obs.tracer.finished
