"""Tests for hierarchical routing masks (paper §2.2, Fig. 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect.routing import Geometry, RoutingMaskCodec


@pytest.fixture
def proto():
    """The prototype's 4x4 two-level codec."""
    return RoutingMaskCodec(Geometry((4, 4)))


def test_geometry_counts():
    g = Geometry((4, 4))
    assert g.num_stations == 16
    assert g.num_processors == 64
    g1 = Geometry((5,), processors_per_station=2)
    assert g1.num_stations == 5
    assert g1.num_processors == 10


def test_geometry_coords_roundtrip():
    g = Geometry((4, 4))
    for sid in range(16):
        assert g.station_id(g.station_coords(sid)) == sid


def test_geometry_rejects_bad_levels():
    with pytest.raises(ValueError):
        Geometry(())
    with pytest.raises(ValueError):
        Geometry((0, 4))


def test_station_mask_single_bits(proto):
    # station 0 on ring 0: bit 0 of stations field, bit 0 of rings field
    assert proto.station_mask(0) == 0b0001_0001
    # station 1 on ring 1 => flat id 5: station bit 1, ring bit 1
    assert proto.station_mask(5) == 0b0010_0010


def test_single_station_roundtrip(proto):
    for sid in range(16):
        mask = proto.station_mask(sid)
        assert proto.is_single_station(mask)
        assert proto.single_station(mask) == sid


def test_paper_figure3_overspecification(proto):
    """Fig. 3: OR-ing {station 0, ring 0} and {station 1, ring 1} also
    selects {station 1, ring 0} and {station 0, ring 1}."""
    s_r0s0 = 0   # ring 0, station 0
    s_r1s1 = 5   # ring 1, station 1
    mask = proto.combine([s_r0s0, s_r1s1])
    selected = proto.stations(mask)
    assert selected == [0, 1, 4, 5]  # includes the two overspecified ones
    assert not proto.is_single_station(mask)


def test_selects_matches_stations_expansion(proto):
    mask = proto.combine([2, 7, 9])
    expanded = set(proto.stations(mask))
    for sid in range(16):
        assert proto.selects(mask, sid) == (sid in expanded)


def test_highest_level_needed(proto):
    # same ring targets need level 0; cross-ring need level 1
    assert proto.highest_level_needed(proto.station_mask(1), src_station=0) == 0
    assert proto.highest_level_needed(proto.station_mask(4), src_station=0) == 1
    both = proto.combine([1, 4])
    assert proto.highest_level_needed(both, src_station=0) == 1


def test_clear_upper(proto):
    mask = proto.combine([0, 5])
    cleared = proto.clear_upper(mask, 1)
    assert proto.field(cleared, 1) == 0
    assert proto.field(cleared, 0) == proto.field(mask, 0)


def test_descend_targets(proto):
    mask = proto.combine([0, 5, 13])  # rings 0, 1, 3
    assert proto.descend_targets(mask, 1) == [0, 1, 3]


def test_with_field(proto):
    mask = proto.station_mask(0)
    mask2 = proto.with_field(mask, 0, 0b1100)
    assert proto.field(mask2, 0) == 0b1100
    assert proto.field(mask2, 1) == proto.field(mask, 1)


# ----------------------------------------------------------------------
# property-based: the mask algebra on arbitrary geometries
# ----------------------------------------------------------------------
geometries = st.sampled_from([
    Geometry((4, 4)),
    Geometry((2, 2)),
    Geometry((3, 5)),
    Geometry((8,)),
    Geometry((2, 2, 2)),
])


@given(geometries, st.data())
@settings(max_examples=150, deadline=None)
def test_combine_is_superset_of_members(geom, data):
    """The OR-mask always selects at least the stations combined into it
    (the inexactness only ever ADDS stations, never loses one) — this is
    the property the coherence protocol's correctness rests on."""
    codec = RoutingMaskCodec(geom)
    members = data.draw(
        st.lists(st.integers(0, geom.num_stations - 1), min_size=1, max_size=6)
    )
    mask = codec.combine(members)
    selected = set(codec.stations(mask))
    assert set(members) <= selected
    for sid in members:
        assert codec.selects(mask, sid)


@given(geometries, st.data())
@settings(max_examples=150, deadline=None)
def test_overspecified_set_is_cartesian_product(geom, data):
    """The selected set equals the cartesian product of per-level fields."""
    codec = RoutingMaskCodec(geom)
    members = data.draw(
        st.lists(st.integers(0, geom.num_stations - 1), min_size=1, max_size=4)
    )
    mask = codec.combine(members)
    per_level = []
    for level in range(geom.num_levels):
        fld = codec.field(mask, level)
        per_level.append({i for i in range(geom.levels[level]) if fld >> i & 1})
    expected = set()
    for sid in range(geom.num_stations):
        coords = geom.station_coords(sid)
        if all(c in per_level[lvl] for lvl, c in enumerate(coords)):
            expected.add(sid)
    assert set(codec.stations(mask)) == expected


@given(geometries, st.data())
@settings(max_examples=100, deadline=None)
def test_single_station_masks_are_exact(geom, data):
    codec = RoutingMaskCodec(geom)
    sid = data.draw(st.integers(0, geom.num_stations - 1))
    mask = codec.station_mask(sid)
    assert codec.stations(mask) == [sid]


@given(geometries, st.data())
@settings(max_examples=100, deadline=None)
def test_mask_width_is_logarithmic(geom, data):
    """The paper's cost claim: mask bits = sum of level widths, not the
    product (station count)."""
    codec = RoutingMaskCodec(geom)
    assert codec.total_bits == sum(geom.levels)
    # strictly fewer bits than one-hot once the machine has >1 level
    if geom.num_levels > 1 and geom.num_stations > 4:
        assert codec.total_bits < geom.num_stations
