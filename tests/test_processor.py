"""Tests for the processor model: cache fast paths, miss classification,
write-backs, barrier registers, interrupts."""

from repro import AtomicRMW, Barrier, Compute, Machine, Read, Write
from repro.core.states import CacheState

from conftest import single, small_config


def test_read_after_write_hits_cache():
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:0")
    cpu = m.cpus[0]
    vals = single(m, 0, Write(r.addr(0), 42), Read(r.addr(0)), Read(r.addr(8)))
    assert vals[1] == 42
    assert vals[2] == 0                 # untouched word in the same line
    # one write miss, then pure hits
    assert cpu.stats.counter("write_misses").value == 1
    assert cpu.stats.counter("read_misses").value == 0
    assert cpu.stats.counter("reads").value == 2


def test_l1_mirrors_l2_state():
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:0")
    cpu = m.cpus[0]
    single(m, 0, Write(r.addr(0), 1))
    la = m.config.line_addr(r.addr(0))
    assert cpu.l2.lookup(la).state is CacheState.DIRTY
    l1 = cpu.l1.lookup(la)
    assert l1 is not None and l1.state is CacheState.DIRTY
    cpu.invalidate_line(la)
    assert cpu.l1.lookup(la) is None and cpu.l2.lookup(la) is None


def test_read_then_write_uses_upgrade():
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:0")
    single(m, 0, Read(r.addr(0)), Write(r.addr(0), 7))
    # the memory must not have sent data twice: state is LI with one owner
    la = m.config.line_addr(r.addr(0))
    entry = m.stations[0].memory.directory.entry(la)
    assert entry.state.value == "LI"
    assert m.read_word(r.addr(0)) == 7


def test_dirty_eviction_writes_back():
    cfg = small_config()
    m = Machine(cfg)
    r = m.allocate(4 * cfg.l2_size_bytes, placement="local:0")
    cpu = m.cpus[0]
    nlines = cfg.l2_size_bytes // cfg.line_bytes

    def prog():
        # dirty more lines than fit in L2 -> forced write-backs
        for i in range(nlines + 8):
            yield Write(r.addr(i * cfg.line_bytes), i)
        # the evicted earliest lines must still read back correctly
        for i in range(8):
            v = yield Read(r.addr(i * cfg.line_bytes))
            assert v == i, (i, v)

    m.run({0: prog()})
    assert cpu.stats.counter("writebacks").value >= 8


def test_compute_costs_time():
    m = Machine(small_config())
    res1 = m.run({0: iter([Compute(10)])})

    def big():
        yield Compute(10000)

    m2 = Machine(small_config())
    res2 = m2.run({0: big()})
    assert m2.parallel_time_ns(res2) > m.parallel_time_ns(res1)


def test_rmw_atomicity_under_contention():
    cfg = small_config()
    m = Machine(cfg)
    r = m.allocate(64, placement="local:1")
    n = cfg.num_cpus

    def inc():
        for _ in range(10):
            yield AtomicRMW(r.addr(0), lambda v: v + 1)

    m.run({c: inc() for c in range(n)})
    assert m.read_word(r.addr(0)) == 10 * n


def test_barrier_synchronizes_all():
    cfg = small_config()
    m = Machine(cfg)
    r = m.allocate(8 * cfg.num_cpus, placement="local:0")
    order = []

    def prog(cid):
        yield Write(r.addr(cid * 8), 1)
        yield Barrier(0, tuple(range(cfg.num_cpus)))
        total = 0
        for i in range(cfg.num_cpus):
            v = yield Read(r.addr(i * 8))
            total += v
        order.append((cid, total))

    m.run({c: prog(c) for c in range(cfg.num_cpus)})
    # after the barrier every cpu must observe every flag
    assert all(total == cfg.num_cpus for _, total in order)


def test_consecutive_barriers_sense_alternation():
    cfg = small_config()
    m = Machine(cfg)
    allc = tuple(range(cfg.num_cpus))

    def prog(cid):
        for b in range(6):
            yield Barrier(b, allc)
            yield Compute(cid * 3 + 1)   # skew arrival times

    m.run({c: prog(c) for c in range(cfg.num_cpus)})
    for cpu in m.cpus:
        assert cpu.barrier_regs == [0, 0]  # all consumed


def test_interrupt_register_or_and_clear():
    m = Machine(small_config())
    cpu = m.cpus[0]
    cpu.raise_interrupt(0b01)
    cpu.raise_interrupt(0b10)
    assert cpu.interrupt_reg == 0b11
    assert cpu.read_interrupt_reg() == 0b11
    assert cpu.interrupt_reg == 0


def test_phase_register_tags_requests():
    from repro import Phase
    from repro.monitor import Monitor

    m = Machine(small_config())
    mon = Monitor()
    m.attach_monitor(mon)
    r = m.allocate(4096, placement="local:0")

    def prog():
        yield Phase(9)
        yield Write(r.addr(0), 1)

    m.run({0: prog()})
    assert mon.phase_table.total(col=9) >= 1


def test_batching_does_not_change_results():
    """cpu_batch is a speed/accuracy knob; final values must be identical."""
    outcomes = []
    for batch in (1, 4, 64):
        cfg = small_config(cpu_batch=batch)
        m = Machine(cfg)
        r = m.allocate(512 * 8)
        n = cfg.num_cpus

        def prog(cid):
            for i in range(cid, 256, n):
                yield Write(r.addr(i * 8), cid * 1000 + i)
            yield Barrier(0, tuple(range(n)))

        m.run({c: prog(c) for c in range(n)})
        outcomes.append([m.read_word(r.addr(i * 8)) for i in range(256)])
    assert outcomes[0] == outcomes[1] == outcomes[2]
