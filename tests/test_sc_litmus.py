"""Sequential-consistency litmus tests (paper §2.3: the protocol 'enables an
efficient implementation of sequential consistency').

Run with ``cpu_batch=1`` so the processor model introduces no batching skew,
at many relative timing offsets to explore interleavings.  The blocking
in-order processor plus the ordered-invalidation protocol must make every
non-SC outcome unobservable.
"""

import pytest

from repro import Compute, Machine, Read, Write

from conftest import small_config


def _run_pair(cfg, prog_a, prog_b, cpu_a, cpu_b):
    m = Machine(cfg)
    m.run({cpu_a: prog_a(m), cpu_b: prog_b(m)})
    return m


@pytest.mark.parametrize("offset", [0, 3, 7, 13, 29, 61, 97])
@pytest.mark.parametrize("same_station", [True, False])
def test_message_passing(offset, same_station):
    """MP: P0: x=1; flag=1.   P1: while flag==0; assert x==1.
    Under SC the consumer can never see flag==1 but x==0."""
    cfg = small_config(cpu_batch=1)
    m = Machine(cfg)
    data = m.allocate(4096, placement="local:1")
    flag = m.allocate(4096, placement="local:2")
    consumer_cpu = 1 if same_station else 6

    def producer():
        yield Compute(offset)
        yield Write(data.addr(0), 1)
        yield Write(flag.addr(0), 1)

    def consumer():
        while True:
            f = yield Read(flag.addr(0))
            if f:
                break
        x = yield Read(data.addr(0))
        assert x == 1, f"SC violation: flag set but data stale (offset={offset})"

    m.run({0: producer(), consumer_cpu: consumer()})


@pytest.mark.parametrize("offset", [0, 5, 17, 41, 83])
def test_store_buffering_forbidden_outcome(offset):
    """SB: P0: x=1; r0=y.   P1: y=1; r1=x.  SC forbids r0==0 and r1==0."""
    cfg = small_config(cpu_batch=1)
    m = Machine(cfg)
    x = m.allocate(4096, placement="local:0")
    y = m.allocate(4096, placement="local:3")
    results = {}

    def p0():
        yield Write(x.addr(0), 1)
        r0 = yield Read(y.addr(0))
        results["r0"] = r0

    def p1():
        yield Compute(offset)
        yield Write(y.addr(0), 1)
        r1 = yield Read(x.addr(0))
        results["r1"] = r1

    m.run({0: p0(), 7: p1()})
    assert not (results["r0"] == 0 and results["r1"] == 0), (
        f"SC violation (store buffering) at offset={offset}: {results}"
    )


@pytest.mark.parametrize("offset", [0, 11, 31, 71])
def test_iriw_no_disagreement_on_write_order(offset):
    """IRIW: two writers to x and y; two readers each read both in opposite
    orders.  Under SC the readers cannot disagree about the write order:
    (r1,r2)=(1,0) and (r3,r4)=(1,0) together are forbidden."""
    cfg = small_config(cpu_batch=1)
    m = Machine(cfg)
    x = m.allocate(4096, placement="local:1")
    y = m.allocate(4096, placement="local:2")
    res = {}

    def wx():
        yield Compute(offset)
        yield Write(x.addr(0), 1)

    def wy():
        yield Write(y.addr(0), 1)

    def r_xy():
        a = yield Read(x.addr(0))
        b = yield Read(y.addr(0))
        res["r1"], res["r2"] = a, b

    def r_yx():
        a = yield Read(y.addr(0))
        b = yield Read(x.addr(0))
        res["r3"], res["r4"] = a, b

    m.run({0: wx(), 2: wy(), 4: r_xy(), 6: r_yx()})
    forbidden = (
        res["r1"] == 1 and res["r2"] == 0 and res["r3"] == 1 and res["r4"] == 0
    )
    assert not forbidden, f"IRIW SC violation at offset={offset}: {res}"


@pytest.mark.parametrize("sc_locking", [True, False])
def test_mp_with_and_without_sc_locking(sc_locking):
    """The paper compared both; this reproduction keeps MP correct either
    way for the blocking-processor model (the lock protects pipelined
    writes, which the R4400 does not issue)."""
    cfg = small_config(cpu_batch=1, sc_locking=sc_locking)
    m = Machine(cfg)
    data = m.allocate(4096, placement="local:3")
    flag = m.allocate(4096, placement="local:1")

    def producer():
        yield Write(data.addr(0), 77)
        yield Write(flag.addr(0), 1)

    def consumer():
        while True:
            f = yield Read(flag.addr(0))
            if f:
                break
        x = yield Read(data.addr(0))
        assert x == 77

    m.run({0: producer(), 5: consumer()})


def test_mp_transitive_through_third_party():
    """WRC (write-to-read causality): P0 writes x; P1 reads x then writes y;
    P2 reads y then must see x."""
    cfg = small_config(cpu_batch=1)
    m = Machine(cfg)
    x = m.allocate(4096, placement="local:0")
    y = m.allocate(4096, placement="local:2")

    def p0():
        yield Write(x.addr(0), 1)

    def p1():
        while True:
            v = yield Read(x.addr(0))
            if v:
                break
        yield Write(y.addr(0), 1)

    def p2():
        while True:
            v = yield Read(y.addr(0))
            if v:
                break
        v = yield Read(x.addr(0))
        assert v == 1, "WRC violation: causality chain broken"

    m.run({1: p0(), 3: p1(), 6: p2()})
