"""Tests for the observability layer (repro.obs): transaction tracing,
time-series probes, the unified metrics snapshot, and the report CLI."""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro import Machine, MachineConfig, Observability, Read, Write
from repro.monitor import Monitor
from repro.obs import chrome_trace, dump_chrome_events, snapshot, to_prometheus
from repro.obs.report import main as report_main, sparkline
from repro.obs.trace import _TICKS_PER_US
from repro.perf import collect_record
from repro.workloads.synthetic import HotSpot

from conftest import small_config, tiny_config

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _observed_tiny_run(**obs_kwargs):
    """Deterministic 2-station run with remote reads, writes and upgrades."""
    machine = Machine(tiny_config())
    obs = Observability(**obs_kwargs).attach(machine)
    remote = machine.allocate(2048, placement="local:1")
    local = machine.allocate(2048, placement="local:0")

    def prog(cpu_id, region, other):
        def gen():
            for i in range(12):
                v = yield Read(region.addr((i * 8) % 1024))
                yield Write(region.addr((i * 8) % 1024), (v or 0) + 1)
                yield Read(other.addr((i * 8) % 1024))
        return gen()

    machine.run({0: prog(0, remote, local), 1: prog(1, local, remote)})
    return machine, obs


def _observed_contended_run():
    """8 CPUs hammering one line: guarantees NACKs and retries."""
    machine = Machine(small_config())
    obs = Observability().attach(machine)
    r = machine.allocate(64, placement="local:2")

    def prog(cid):
        def gen():
            for i in range(4):
                yield Write(r.addr(0), cid * 10 + i)
        return gen()

    machine.run({c: prog(c) for c in range(len(machine.cpus))})
    return machine, obs


# ----------------------------------------------------------------------
# transaction tracing
# ----------------------------------------------------------------------
def test_trace_span_chain_contiguous_and_total_equals_latency():
    machine, obs = _observed_tiny_run()
    tr = obs.tracer
    assert tr.finished, "no transactions traced"
    assert not tr.active, "traces left open after the run drained"
    for rec in tr.finished:
        spans = rec.spans()
        assert spans, rec
        # contiguous chain tiling [begin, end]
        assert spans[0][1] == rec.begin
        assert spans[-1][2] == rec.end
        for (_l1, _a, b), (_l2, c, _d) in zip(spans, spans[1:]):
            assert b == c, f"gap in span chain of {rec!r}"
        assert sum(t1 - t0 for _l, t0, t1 in spans) == rec.duration

    # the sum of trace durations per (cpu, kind) equals exactly what the
    # processor's latency accumulators recorded (what analysis.latency reads)
    for cpu in machine.cpus:
        for kind in ("read", "write", "rmw"):
            recs = [r for r in tr.finished
                    if r.cpu == cpu.cpu_id and r.kind == kind]
            acc = cpu.stats.accumulators.get(f"{kind}_latency")
            assert len(recs) == (acc.count if acc else 0)
            assert sum(r.duration for r in recs) == (acc.total if acc else 0)


def test_remote_transactions_cross_the_network():
    _machine, obs = _observed_tiny_run()
    labels = {l for rec in obs.tracer.finished for _t, l in rec.stamps}
    # remote misses must show the full pipeline, not just issue/restart
    for expected in ("cpu.send", "ri.send", "ring.inject", "ri.arrive",
                     "ri.deliver", "mem.in", "mem.svc", "nc.in", "nc.svc"):
        assert expected in labels, f"{expected} never stamped ({sorted(labels)})"


def test_contention_records_retries_and_nack_stamps():
    _machine, obs = _observed_contended_run()
    retried = [r for r in obs.tracer.finished if r.retries]
    assert retried, "contended run produced no NACK/retry traces"
    for rec in retried:
        assert any(l == "nack" for _t, l in rec.stamps)


def test_tracer_capacity_bounds_retained_traces():
    _machine, obs = _observed_tiny_run(trace_capacity=5)
    tr = obs.tracer
    assert len(tr.finished) == 5
    assert tr.dropped > 0


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def test_chrome_trace_schema_and_span_nesting():
    _machine, obs = _observed_tiny_run()
    doc = obs.chrome_trace()
    # valid trace-event JSON document
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
    json.loads(json.dumps(doc))  # round-trips
    parents = {}
    for ev in doc["traceEvents"]:
        assert ev["ph"] in ("X", "M", "C")
        if ev["ph"] == "X":
            assert ev["ts"] >= 0 and ev["dur"] >= 0
            assert isinstance(ev["name"], str)
            assert "pid" in ev and "tid" in ev
            if ev.get("cat") == "txn":
                parents[ev["args"]["trace_id"]] = (ev["ts"], ev["ts"] + ev["dur"])
    assert parents, "no transaction slices exported"
    # every span slice nests inside its transaction's slice
    eps = 1e-6
    for ev in doc["traceEvents"]:
        if ev["ph"] == "X" and ev.get("cat") == "span":
            t0, t1 = parents[ev["args"]["trace_id"]]
            assert ev["ts"] >= t0 - eps
            assert ev["ts"] + ev["dur"] <= t1 + eps


def test_chrome_trace_includes_probe_counters():
    _machine, obs = _observed_tiny_run()
    doc = obs.chrome_trace()
    counters = [ev for ev in doc["traceEvents"] if ev["ph"] == "C"]
    assert counters
    assert all("value" in ev["args"] for ev in counters)


def test_write_trace_file(tmp_path):
    _machine, obs = _observed_tiny_run()
    path = tmp_path / "trace.json"
    obs.write_trace(path)
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]


# ----------------------------------------------------------------------
# probes
# ----------------------------------------------------------------------
def test_probe_sampling_is_deterministic():
    _m1, obs1 = _observed_tiny_run()
    _m2, obs2 = _observed_tiny_run()
    s1, s2 = obs1.probes.series(), obs2.probes.series()
    assert obs1.probes.samples == obs2.probes.samples > 0
    assert s1 == s2
    # every series carries one point per tick
    for series in s1.values():
        assert len(series["t"]) == len(series["v"]) == obs1.probes.samples


def test_probes_see_traffic_and_preserve_simulated_time():
    plain = Machine(tiny_config())
    remote_p = plain.allocate(2048, placement="local:1")

    def prog(region):
        def gen():
            for i in range(12):
                yield Read(region.addr((i * 8) % 1024))
        return gen()

    plain.run({0: prog(remote_p)})

    observed = Machine(tiny_config())
    Observability().attach(observed)
    remote_o = observed.allocate(2048, placement="local:1")
    observed.run({0: prog(remote_o)})

    # non-intrusive: sampling adds its own tick events (so `now` may land on
    # the next period boundary) but never perturbs the coherence traffic or
    # the workload's own timing
    assert observed.engine.now >= plain.engine.now
    for cpu_o, cpu_p in zip(observed.cpus, plain.cpus):
        assert cpu_o.stats.accumulators.keys() == cpu_p.stats.accumulators.keys()
        for name, acc in cpu_p.stats.accumulators.items():
            other = cpu_o.stats.accumulators[name]
            assert (other.count, other.total) == (acc.count, acc.total)
    assert observed.memory_stats() == plain.memory_stats()
    assert observed.nc_stats() == plain.nc_stats()

    series = observed.obs.probes.series()
    assert any(any(v > 0 for v in s["v"]) for s in series.values())


def test_probe_ring_buffer_bounded():
    _machine, obs = _observed_tiny_run(probe_period_ns=50.0, probe_capacity=16)
    for series in obs.probes.series().values():
        assert len(series["v"]) <= 16


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
def test_snapshot_unifies_all_sections():
    machine, obs = _observed_tiny_run()
    machine.attach_monitor(Monitor())  # histograms appear even when attached late
    snap = machine.obs_snapshot()
    assert snap["meta"]["events_run"] == machine.engine.events_run
    assert snap["counters"]  # StatGroup counters flattened
    assert any(k.endswith(".bus.transactions") for k in snap["counters"])
    assert any(k.startswith("ring.L0") for k in snap["counters"])
    assert snap["accumulators"]
    assert snap["fifos"]
    assert "mean_depth" in next(iter(snap["fifos"].values()))
    assert snap["utilizations"]["bus"] >= 0
    assert snap["probes"]
    assert snap["trace"]["finished"] == len(obs.tracer.finished)


def test_snapshot_without_obs_or_monitor_still_works():
    machine = Machine(tiny_config())
    r = machine.allocate(256, placement="local:0")

    def gen():
        yield Write(r.addr(0), 1)

    machine.run({0: gen()})
    snap = snapshot(machine, include_wall=False)
    assert "probes" not in snap and "trace" not in snap and "histograms" not in snap
    assert "wall_s" not in snap["meta"]
    assert snap["counters"]


def test_snapshot_is_deterministic_without_wall():
    m1, _ = _observed_tiny_run()
    m2, _ = _observed_tiny_run()
    assert m1.obs_snapshot(include_wall=False) == m2.obs_snapshot(include_wall=False)


def test_prometheus_export_format():
    machine, _obs = _observed_tiny_run()
    machine.attach_monitor(Monitor())
    text = to_prometheus(machine.obs_snapshot())
    lines = text.splitlines()
    assert any(l.startswith("# TYPE numachine_counter_total counter") for l in lines)
    assert any(l.startswith("numachine_sim_time_ns") for l in lines)
    assert any(l.startswith("numachine_fifo_mean_depth{") for l in lines)
    assert any(l.startswith("numachine_trace_segment_ticks_total{") for l in lines)
    # every sample line is `name{labels} value` or `name value`
    for line in lines:
        if line.startswith("#") or not line:
            continue
        name_part, _, value = line.rpartition(" ")
        float(value)
        assert name_part.startswith("numachine_")


_GOLDEN = Path(__file__).resolve().parent / "data" / "prometheus_golden.txt"

#: Prometheus text exposition: legal metric names ([a-zA-Z_:][a-zA-Z0-9_:]*)
_METRIC_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")


def _golden_snapshot() -> dict:
    """A hand-built snapshot exercising every section plus the label
    characters the exposition format must escape."""
    return {
        "schema": 1,
        "meta": {"time_ns": 1234.5, "events_run": 42},
        "counters": {"S0.mem.reads": 7, 'tricky"name': 1, "back\\slash": 2,
                     "multi\nline": 3},
        "accumulators": {"P0.read_latency": {"count": 4, "total": 400,
                                             "min": 10, "max": 200,
                                             "mean": 100.0}},
        "utilizations": {"bus": 0.25, "ring": 0.5},
        "fifos": {"S0.mem.in": {"depth": 1, "max_depth": 3, "mean_depth": 0.5,
                                "pushes": 9, "stalls": 0,
                                "wait_mean_ticks": 2.0}},
        "histograms": {"coherence": {"name": "coherence", "rows": ["LV"],
                                     "cols": ["read"],
                                     "cells": [["LV", "read", 5]],
                                     "overflows": 0}},
        "probes": {"S0.bus.util": {"t": [0, 10], "v": [0.0, 0.75],
                                   "unit": ""}},
        "trace": {"finished": 2, "active": 0, "dropped": 0, "abandoned": 0,
                  "breakdown": {"read": {"count": 2, "total_ticks": 100,
                                         "segments": {"mem.svc": {
                                             "count": 2, "ticks": 60}}}}},
    }


def test_prometheus_matches_golden_file():
    assert to_prometheus(_golden_snapshot()) == _GOLDEN.read_text()


def test_prometheus_label_escaping():
    text = to_prometheus(_golden_snapshot())
    # backslash, double-quote and newline are escaped; no raw newline may
    # ever appear inside a label value (it would corrupt the exposition)
    assert r'name="back\\slash"' in text
    assert r'name="tricky\"name"' in text
    assert r'name="multi\nline"' in text
    for line in text.splitlines():
        assert "\n" not in line  # trivially true, but guards the splitter
        if not line.startswith("#") and "{" in line:
            assert line.count("{") == 1 and "} " in line


def test_prometheus_metric_name_legality_and_help_type_pairing():
    machine, _obs = _observed_tiny_run()
    machine.attach_monitor(Monitor())
    for text in (to_prometheus(machine.obs_snapshot()),
                 to_prometheus(_golden_snapshot())):
        helped, typed, sampled = set(), set(), set()
        for line in text.splitlines():
            if line.startswith("# HELP "):
                helped.add(line.split()[2])
            elif line.startswith("# TYPE "):
                name, mtype = line.split()[2:4]
                assert mtype in ("counter", "gauge")
                assert name in helped, f"TYPE before HELP for {name}"
                typed.add(name)
            elif line:
                name = line.split("{")[0].split(" ")[0]
                assert _METRIC_RE.fullmatch(name), f"illegal metric {name!r}"
                assert name in typed, f"sample before TYPE for {name}"
                sampled.add(name)
        # HELP/TYPE always come as a pair (samples may be legally absent)
        assert helped == typed


# ----------------------------------------------------------------------
# watchdog dump as Perfetto instant events
# ----------------------------------------------------------------------
def _fake_dump() -> dict:
    return {
        "now_ticks": 4000,
        "blocked": ["S0.mem.in stalled 900 ns", "P3 waiting on read"],
        "locked_memory_lines": [
            {"station": 0, "line": "0x1000", "state": "LV", "pending": 2},
        ],
        "locked_nc_lines": [
            {"station": 1, "line": "0x2000", "state": "NOTIN", "pending": 1},
        ],
    }


def test_dump_chrome_events_schema():
    events = dump_chrome_events(_fake_dump())
    inst = [ev for ev in events if ev["ph"] == "i"]
    assert len(inst) == 4  # 2 blocked + 2 locked lines
    for ev in inst:
        assert ev["pid"] == 4
        assert ev["s"] == "t"
        assert ev["ts"] == pytest.approx(4000 / _TICKS_PER_US)
        assert ev["tid"] in (1, 2)
    kinds = {ev["args"].get("kind") for ev in inst if ev["tid"] == 2}
    assert kinds == {"memory", "nc"}
    json.loads(json.dumps({"traceEvents": events}))


def test_chrome_trace_overlays_watchdog_dump():
    _machine, obs = _observed_tiny_run()
    doc = obs.chrome_trace(dump=_fake_dump())
    phases = {ev["ph"] for ev in doc["traceEvents"]}
    assert {"X", "C", "i"} <= phases  # txns + probes + dump in one document
    bare = chrome_trace(None, None, _fake_dump())
    assert all(ev["ph"] in ("M", "i") for ev in bare["traceEvents"])


def test_real_watchdog_dump_renders(tmp_path):
    """An actual run's diagnostic dump flows through the obs layer end to
    end (the dump of a healthy drained machine is just sparse)."""
    from repro.fault import diagnostic_dump

    machine = Machine(tiny_config())
    obs = Observability().attach(machine)
    r = machine.allocate(256, placement="local:1")

    def gen():
        yield Read(r.addr(0))

    machine.run({0: gen()})
    dump = diagnostic_dump(machine)
    events = dump_chrome_events(dump)
    assert any(ev["ph"] == "M" for ev in events)
    path = tmp_path / "trace_with_dump.json"
    obs.write_trace(path, dump=dump)
    assert json.loads(path.read_text())["traceEvents"]


# ----------------------------------------------------------------------
# report CLI error handling
# ----------------------------------------------------------------------
def test_report_cli_missing_file_exits_2(tmp_path, capsys):
    rc = report_main([str(tmp_path / "nope.json")])
    assert rc == 2
    err = capsys.readouterr().err
    assert "error: cannot read snapshot" in err
    assert "nope.json" in err


def test_report_cli_non_json_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("this is not json{")
    rc = report_main([str(bad)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "not a JSON snapshot" in err
    assert "write_snapshot" in err


def test_runrecord_carries_obs_summary():
    machine, obs = _observed_tiny_run()
    rec = collect_record(machine, workload="tiny", nprocs=2, parallel_time_ns=1.0)
    assert rec.obs["trace"]["finished"] == len(obs.tracer.finished)
    assert rec.obs["probes"]["samples"] == obs.probes.samples
    rt = type(rec).from_json(rec.to_json())
    assert rt.obs == rec.obs
    assert rt.deterministic_view() == rec.deterministic_view()


# ----------------------------------------------------------------------
# report CLI
# ----------------------------------------------------------------------
def test_report_cli_text_and_prom(tmp_path, capsys):
    machine, _obs = _observed_tiny_run()
    machine.attach_monitor(Monitor())
    path = tmp_path / "obs.json"
    machine.obs.write_snapshot(path)

    assert report_main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "latency breakdown" in out
    assert "probe timelines" in out
    assert "fifos" in out

    assert report_main([str(path), "--format", "prom"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE numachine_counter_total counter" in out

    assert report_main([str(path), "--format", "json"]) == 0
    assert json.loads(capsys.readouterr().out)["schema"] >= 1


def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert len(sparkline([0.0] * 10)) == 10
    assert len(sparkline(list(range(200)), width=60)) == 60
    # peak maps to the densest glyph
    assert sparkline([0, 1])[-1] == "@"


# ----------------------------------------------------------------------
# overhead guard: tracing off must leave the PR 1 fast paths untouched
# ----------------------------------------------------------------------
def test_tracing_off_is_bit_identical_and_tracing_never_shifts_time():
    cfg = MachineConfig.small(stations_per_ring=2, rings=2, cpus=2)
    plain = Machine(cfg)
    HotSpot(words=16, ops=60).run(plain, nprocs=8)

    traced = Machine(MachineConfig.small(stations_per_ring=2, rings=2, cpus=2))
    Observability(probes=False).attach(traced)  # tracer only: no extra events
    HotSpot(words=16, ops=60).run(traced, nprocs=8)

    # tracing records but never reschedules: identical event stream
    assert traced.engine.events_run == plain.engine.events_run
    assert traced.engine.now == plain.engine.now
    assert traced.memory_stats() == plain.memory_stats()
    assert traced.nc_stats() == plain.nc_stats()
    assert traced.obs.tracer.finished


@pytest.mark.skipif(not BASELINE.exists(), reason="no recorded engine baseline"
                    " (run benchmarks/bench_engine_throughput.py first)")
def test_tracing_off_throughput_vs_recorded_baseline():
    """With no observability attached, the hot-spot microbench must replay
    the recorded baseline's event stream exactly and stay within a generous
    wall-clock margin of its throughput (hosts are noisy; the exact 3%
    budget is checked by the bench itself on a quiet machine)."""
    base = json.loads(BASELINE.read_text())
    best = 0.0
    machine = None
    for _ in range(3):
        machine = Machine(MachineConfig.prototype())
        HotSpot(words=64, ops=400).run(machine, nprocs=base["nprocs"])
        # the baseline records the hop-by-hop event stream; under
        # NUMACHINE_FUSE=on the engine runs fewer (macro-)events but the
        # hop-equivalent count must reconstruct the baseline exactly
        assert machine.event_counts()["hop_equivalent"] == base["events_run"]
        assert machine.engine.now == base["final_now_ticks"]
        best = max(best, machine.engine.events_per_sec)
    if machine.fused:
        # macro-events/s is not comparable to the baseline's hop-events/s;
        # rescale to hop-equivalent events per second before the gate
        best = best * machine.event_counts()["hop_equivalent"] / (
            machine.engine.events_run
        )
    assert best >= base["events_per_sec"] * 0.75, (
        f"throughput collapsed: best {best:.0f} ev/s vs "
        f"baseline {base['events_per_sec']:.0f} ev/s"
    )
