"""Machine-level metrics (utilizations, hit rates, delays) and the Table 1
contention-free latency reproduction."""

import pytest

from repro import Barrier, Machine, Read
from repro.analysis.latency import (
    PAPER_TABLE1,
    SCENARIOS,
    analytic_estimate,
    measure_scenario,
    measure_table1,
    render_table1,
)
from repro.system.config import MachineConfig

from conftest import small_config


def test_utilizations_reported_for_all_paths():
    m = Machine(small_config())
    r = m.allocate(8192)
    n = m.config.num_cpus

    def prog(cid):
        for i in range(16):
            yield Read(r.addr(((cid * 16 + i) % 128) * 8))

    m.run({c: prog(c) for c in range(n)})
    util = m.utilizations()
    assert set(util) == {"bus", "local_ring", "central_ring"}
    assert all(0 <= v <= 1 for v in util.values())
    assert util["bus"] > 0
    assert util["central_ring"] > 0


def test_ring_interface_delays_reported():
    m = Machine(small_config())
    r = m.allocate(8192)
    n = m.config.num_cpus

    def prog(cid):
        for i in range(16):
            yield Read(r.addr(((cid * 16 + i) % 128) * 8))

    m.run({c: prog(c) for c in range(n)})
    delays = m.ring_interface_delays()
    for key in ("send", "down_sinkable", "down_nonsinkable", "iri_up", "iri_down"):
        assert key in delays
        assert delays[key] >= 0


def test_hit_rate_metric_consistency():
    m = Machine(small_config())
    r = m.allocate(4096, placement="local:1")
    allc = (0, 1)

    def a():
        yield Read(r.addr(0))
        yield Barrier(0, allc)

    def b():
        yield Barrier(0, allc)
        yield Read(r.addr(0))

    m.run({0: a(), 1: b()})
    hit = m.nc_hit_rate()
    assert hit["total"] == pytest.approx(0.5)
    assert hit["migration"] + hit["caching"] == pytest.approx(hit["total"])


def test_parallel_time_is_max_finish():
    from repro import Compute

    m = Machine(small_config())

    def fast():
        yield Compute(10)

    def slow():
        yield Compute(10000)

    res = m.run({0: fast(), 1: slow()})
    assert m.parallel_time_ns(res) == pytest.approx(
        max(res.cpu_finish_ns.values())
    )
    assert res.cpu_finish_ns[1] > res.cpu_finish_ns[0]


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: f"{s[0]}-{s[1]}")
def test_table1_within_15_percent_of_paper(scenario):
    paper_ns, _cycles = PAPER_TABLE1[scenario]
    sim = measure_scenario(*scenario)
    assert sim == pytest.approx(paper_ns, rel=0.15), (
        f"{scenario}: sim {sim:.0f}ns vs paper {paper_ns}ns"
    )


def test_table1_orderings_hold():
    """The qualitative structure: upgrade < read <= intervention within each
    locality, and local < same-ring < different-ring for each kind."""
    measured = measure_table1()
    for loc in ("local", "remote_same_ring", "remote_diff_ring"):
        assert measured[(loc, "upgrade")] < measured[(loc, "read")]
        assert measured[(loc, "read")] <= measured[(loc, "intervention")] * 1.05
    for kind in ("read", "upgrade", "intervention"):
        assert (
            measured[("local", kind)]
            < measured[("remote_same_ring", kind)]
            < measured[("remote_diff_ring", kind)]
        )


def test_table1_render_mentions_all_scenarios():
    measured = measure_table1()
    text = render_table1(measured, MachineConfig.prototype())
    for loc, kind in SCENARIOS:
        assert f"{loc}/{kind}" in text


def test_analytic_estimate_same_ballpark():
    """The pipeline-sum estimate agrees with simulation within 40% (it
    ignores queueing and overlap, so it is only a calibration aid)."""
    cfg = MachineConfig.prototype()
    for scenario in SCENARIOS:
        est = analytic_estimate(cfg, *scenario)
        sim = measure_scenario(*scenario, config=MachineConfig.prototype())
        assert est == pytest.approx(sim, rel=0.4), (scenario, est, sim)
