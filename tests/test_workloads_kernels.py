"""End-to-end correctness of the SPLASH-2-like kernels: every value flows
through the simulated coherence protocol and must match a host-side
reference computation."""

import pytest

from repro import Machine
from repro.workloads.cholesky import Cholesky, verify_cholesky
from repro.workloads.fft import FFT, reference_dft
from repro.workloads.lu import LUContiguous, LUNoncontiguous, reference_lu
from repro.workloads.radix import RadixSort

from conftest import small_config


@pytest.mark.parametrize("cls", [LUContiguous, LUNoncontiguous])
@pytest.mark.parametrize("nprocs", [1, 4])
def test_lu_matches_reference(cls, nprocs):
    m = Machine(small_config())
    wl = cls(n=16, block=4)
    wl.run(m, nprocs=nprocs)
    ref = reference_lu(wl.input)
    for i in range(wl.n):
        for j in range(wl.n):
            got = m.read_word(wl._addr(i, j))
            assert abs(got - ref[i][j]) < 1e-9, (i, j)


def test_lu_matches_numpy():
    import numpy as np

    m = Machine(small_config())
    wl = LUContiguous(n=16, block=4)
    wl.run(m, nprocs=4)
    a = np.array(wl.input)
    # reconstruct L and U from the packed result and check L @ U == A
    lu = np.array([
        [m.read_word(wl._addr(i, j)) for j in range(wl.n)]
        for i in range(wl.n)
    ])
    L = np.tril(lu, -1) + np.eye(wl.n)
    U = np.triu(lu)
    assert np.allclose(L @ U, a, atol=1e-8)


def test_lu_owner_map_is_balanced():
    wl = LUContiguous(n=32, block=4)
    counts = {}
    for I in range(wl.nb):
        for J in range(wl.nb):
            o = wl.owner(I, J, 4)
            counts[o] = counts.get(o, 0) + 1
    assert max(counts.values()) - min(counts.values()) <= wl.nb


@pytest.mark.parametrize("nprocs", [1, 2, 8])
def test_fft_matches_reference(nprocs):
    m = Machine(small_config())
    wl = FFT(n=256)
    wl.run(m, nprocs=nprocs)
    got = wl.result(m)
    ref = reference_dft(wl.default_input())
    err = max(abs(a - b) for a, b in zip(got, ref))
    assert err < 1e-9


def test_fft_matches_numpy():
    import numpy as np

    m = Machine(small_config())
    wl = FFT(n=256)
    wl.run(m, nprocs=4)
    got = np.array(wl.result(m))
    ref = np.fft.fft(np.array(wl.default_input()))
    assert np.allclose(got, ref, atol=1e-9)


def test_fft_rejects_non_square_size():
    with pytest.raises(ValueError):
        FFT(n=512)  # not an even power of two


@pytest.mark.parametrize("nprocs", [1, 4])
def test_radix_sorts(nprocs):
    m = Machine(small_config())
    wl = RadixSort(n=512, radix=64)
    wl.run(m, nprocs=nprocs)
    assert wl.result(m) == sorted(wl.default_input())


def test_radix_is_stable_permutation():
    m = Machine(small_config())
    wl = RadixSort(n=256, radix=64)
    wl.run(m, nprocs=4)
    got = wl.result(m)
    assert sorted(got) == sorted(wl.default_input())  # a permutation
    assert got == sorted(got)


@pytest.mark.parametrize("nprocs", [1, 4])
def test_cholesky_factor_correct(nprocs):
    m = Machine(small_config())
    wl = Cholesky(nblocks=4, block=4, border=4)
    wl.run(m, nprocs=nprocs)
    L = wl.result_factor(m)
    assert verify_cholesky(wl.input, L) < 1e-9


def test_cholesky_task_queue_consumed_exactly_once():
    m = Machine(small_config())
    wl = Cholesky(nblocks=4, block=4, border=4)
    wl.run(m, nprocs=4)
    # the shared task counter ended past n (each thread reads one sentinel)
    final = m.read_word(wl.task.addr(0))
    assert final >= wl.n


def test_cholesky_structure_covers_all_columns():
    wl = Cholesky(nblocks=3, block=4, border=2)
    cols = sorted(wl.task_to_column(t) for t in range(wl.n))
    assert cols == list(range(wl.n))
    for j in range(wl.n):
        assert wl.col_rows(j)[0] == j
        for k in wl.deps(j):
            assert k < j
