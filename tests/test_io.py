"""Tests for the station I/O module (DMA + completion interrupts, §3.2)."""

from repro import Barrier, Machine, Read, SoftOp, Write
from repro.system.io import IORequest

from conftest import small_config


def test_dma_read_deposits_lines_and_interrupts():
    m = Machine(small_config())
    cfg = m.config
    buf = m.allocate(4 * cfg.line_bytes, placement="local:0")
    payload = [[10 + i] * cfg.line_words for i in range(4)]

    def prog():
        yield SoftOp("io_read", {
            "addr": buf.addr(0), "nlines": 4, "intr_bits": 0b1,
            "payload": payload,
        })
        bits = yield SoftOp("wait_interrupt", {})
        assert bits == 0b1
        for i in range(4):
            v = yield Read(buf.addr(i * cfg.line_bytes))
            assert v == 10 + i

    m.run({0: prog()})
    io = m.stations[0].io
    assert io.stats.counter("reads").value == 1
    assert io.stats.counter("interrupts").value == 1


def test_dma_read_kills_stale_cached_copies():
    """Device input must invalidate processor copies of the target buffer."""
    m = Machine(small_config())
    cfg = m.config
    buf = m.allocate(cfg.line_bytes, placement="local:0")

    def prog():
        v = yield Read(buf.addr(0))
        assert v == 0                # cached now
        yield SoftOp("io_read", {
            "addr": buf.addr(0), "nlines": 1,
            "payload": [[99] * cfg.line_words],
        })
        yield SoftOp("wait_interrupt", {})
        v = yield Read(buf.addr(0))  # the cached 0 was killed: fresh fetch
        assert v == 99, v

    m.run({0: prog()})


def test_dma_write_sees_coherent_dirty_data():
    """Device output must observe the latest cached (dirty) values."""
    m = Machine(small_config())
    cfg = m.config
    buf = m.allocate(2 * cfg.line_bytes, placement="local:0")
    captured = {}

    def prog():
        yield Write(buf.addr(0), 555)               # dirty in L2
        yield SoftOp("io_write", {"addr": buf.addr(0), "nlines": 2})
        yield SoftOp("wait_interrupt", {})

    m.run({0: prog()})
    io = m.stations[0].io
    assert io.stats.counter("writes").value == 1


def test_io_interrupt_can_target_remote_cpu():
    """§3.2: 'system software can specify the processor to be interrupted
    as well as the bit pattern' — including a processor on another station."""
    m = Machine(small_config())
    cfg = m.config
    buf = m.allocate(cfg.line_bytes, placement="local:0")
    remote_cpu = 6  # station 3
    allc = (0, remote_cpu)

    def initiator():
        # submit on station 0's device, interrupt cpu 6 with pattern 0b1000
        yield SoftOp("io_read", {
            "addr": buf.addr(0), "nlines": 1,
            "notify_cpu": remote_cpu, "intr_bits": 0b1000,
            "payload": [[1] * cfg.line_words],
        })
        yield Barrier(0, allc)

    def waiter():
        bits = yield SoftOp("wait_interrupt", {})
        assert bits == 0b1000
        yield Barrier(0, allc)

    m.run({0: initiator(), remote_cpu: waiter()})


def test_io_requests_queue_fifo():
    m = Machine(small_config())
    cfg = m.config
    buf = m.allocate(8 * cfg.line_bytes, placement="local:1")
    io = m.stations[1].io
    done = []
    for i in range(3):
        io.submit(IORequest(
            kind="read", addr=buf.addr(i * cfg.line_bytes), nlines=1,
            notify_cpu=2, payload=[[i] * cfg.line_words],
        ))
    m.cpus[2].on_interrupt = lambda bits: done.append(m.cpus[2].read_interrupt_reg())
    m.engine.run()
    assert io.stats.counter("reads").value == 3
    la0 = cfg.line_addr(buf.addr(0))
    assert m.stations[1].memory.read_line(la0)[0] == 0
