"""The pluggable-coherence contract.

Three guarantees pinned here:

* **Selection** — the registry rejects unknown names, the precedence is
  ``config.protocol`` > ``NUMACHINE_PROTOCOL`` > default, and an invalid
  name fails fast at machine construction.
* **Default bit-identity** — with the ``numachine`` protocol the refactor
  is invisible: every point of ``tests/data/protocol_fingerprints.json``
  (captured on the pre-refactor monolith) reproduces exactly, on both
  schedulers, and spot checks hold on the elaborated backend and under
  transit fusion (the surface uses hop-equivalents, so one fixture covers
  every execution strategy).
* **The MSI baseline is a real protocol** — it completes the canonical
  workloads with the invariant checker attached, passes its conformance
  suite (every declared invariant exercised), is elab/interp bit-identical
  too, and measurably *diverges* from NUMAchine (different finish times,
  no NC hits) — it is an ablation, not an alias.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.protocol import (
    DEFAULT_PROTOCOL,
    canonical_surface,
    get_protocol,
    resolve_protocol_name,
    run_conformance,
)
from repro.system.config import MachineConfig
from repro.system.machine import Machine
from repro.verify import CoherenceChecker
from repro.workloads.lu import LUContiguous
from repro.workloads.synthetic import HotSpot

FIXTURE = Path(__file__).parent / "data" / "protocol_fingerprints.json"

_WORKLOADS = {
    "hotspot": lambda: HotSpot(words=16, ops=40),
    "lu": lambda: LUContiguous(n=16, block=4),
}


def _fixture() -> dict:
    return json.loads(FIXTURE.read_text())


def _surface_for(point_key: str, protocol: str, **machine_kwargs) -> dict:
    wname, pfield, _sched = point_key.split("|")
    cfg = MachineConfig.prototype()
    cfg.protocol = protocol
    machine = Machine(cfg, **machine_kwargs)
    _WORKLOADS[wname]().run(machine, nprocs=int(pfield[1:]))
    # normalize through JSON so the comparison sees what the fixture file
    # sees (tuples -> lists, float repr roundtrip)
    return json.loads(json.dumps(canonical_surface(machine)))


# ----------------------------------------------------------------------
# selection and registry
# ----------------------------------------------------------------------
def test_registry_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown coherence protocol"):
        get_protocol("mesi-of-the-future")


def test_registry_is_case_insensitive():
    assert get_protocol("MSI").name == "msi"
    assert get_protocol(" Numachine ").name == "numachine"


def test_resolution_precedence(monkeypatch):
    monkeypatch.delenv("NUMACHINE_PROTOCOL", raising=False)
    assert resolve_protocol_name() == DEFAULT_PROTOCOL
    monkeypatch.setenv("NUMACHINE_PROTOCOL", "msi")
    assert resolve_protocol_name() == "msi"
    cfg = MachineConfig.small(stations_per_ring=2, rings=1, cpus=2)
    cfg.protocol = "numachine"
    # an explicit config field beats the environment
    assert resolve_protocol_name(cfg) == "numachine"
    cfg.protocol = ""
    assert resolve_protocol_name(cfg) == "msi"


def test_machine_stamps_protocol(monkeypatch):
    monkeypatch.delenv("NUMACHINE_PROTOCOL", raising=False)
    cfg = MachineConfig.small(stations_per_ring=2, rings=1, cpus=2)
    cfg.protocol = "msi"
    m = Machine(cfg)
    assert m.protocol_name == "msi"
    assert m.protocol is get_protocol("msi")
    for st in m.stations:
        assert isinstance(st.memory, m.protocol.memory_class)
        assert isinstance(st.nc, m.protocol.nc_class)


def test_invalid_protocol_fails_at_construction():
    cfg = MachineConfig.small(stations_per_ring=2, rings=1, cpus=2)
    cfg.protocol = "firefly"
    with pytest.raises(ValueError, match="firefly"):
        Machine(cfg)


# ----------------------------------------------------------------------
# default-protocol bit-identity against the pre-refactor fixture
# ----------------------------------------------------------------------
@pytest.mark.parametrize("point", sorted(_fixture()["points"]))
def test_numachine_fingerprint_pinned(monkeypatch, point):
    fix = _fixture()
    _wname, _pfield, sched = point.split("|")
    monkeypatch.setenv("NUMACHINE_SCHED", sched)
    got = _surface_for(point, fix["protocol"])
    assert got == fix["points"][point], (
        f"canonical surface drifted from the pre-refactor capture at {point}"
    )


@pytest.mark.parametrize("point", ["hotspot|P4|heap", "lu|P4|heap"])
def test_numachine_fingerprint_elab_and_fused(monkeypatch, point):
    """The fixture is strategy-invariant: the elaborated backend and
    transit fusion reproduce it too (hop-equivalents, not raw events)."""
    fix = _fixture()
    monkeypatch.setenv("NUMACHINE_SCHED", "heap")
    want = fix["points"][point]
    assert _surface_for(point, fix["protocol"], backend="elab") == want
    monkeypatch.setenv("NUMACHINE_FUSE", "on")
    assert _surface_for(point, fix["protocol"]) == want


# ----------------------------------------------------------------------
# the MSI baseline: conformance, completion, backend identity
# ----------------------------------------------------------------------
def test_msi_conformance_suite():
    checks = run_conformance("msi")
    # the suite itself asserts every declared invariant fired; re-state
    # the load-bearing ones so a weakened declaration list fails loudly
    for inv in ("full-map-coverage", "single-owner", "sc-blocking"):
        assert checks.get(inv, 0) > 0, (inv, checks)


def test_numachine_conformance_suite():
    checks = run_conformance("numachine")
    for inv in ("proc-mask-coverage", "routing-mask-coverage"):
        assert checks.get(inv, 0) > 0, (inv, checks)


@pytest.mark.parametrize("wname", sorted(_WORKLOADS))
def test_msi_completes_checked(wname):
    cfg = MachineConfig.small(stations_per_ring=2, rings=2, cpus=4)
    cfg.protocol = "msi"
    m = Machine(cfg)
    checker = m.attach_verifier(CoherenceChecker(max_locked_ticks=3_000_000))
    _WORKLOADS[wname]().run(m, nprocs=16)
    checker.assert_quiescent()
    assert m.engine.now > 0


@pytest.mark.parametrize("nprocs", [4, 16, 64])
@pytest.mark.parametrize("wname", sorted(_WORKLOADS))
def test_msi_completes_and_backends_bit_identical(wname, nprocs):
    """Acceptance: MSI runs the canonical workloads to completion at
    P=4/16/64 on both backends, with identical canonical surfaces."""
    surfaces = {}
    for backend in ("interp", "elab"):
        cfg = MachineConfig.prototype()
        cfg.protocol = "msi"
        m = Machine(cfg, backend=backend)
        _WORKLOADS[wname]().run(m, nprocs=nprocs)
        assert m.backend == backend
        assert m.engine.now > 0
        surfaces[backend] = canonical_surface(m)
    assert surfaces["interp"] == surfaces["elab"]


def test_protocols_actually_diverge(monkeypatch):
    """MSI is an ablation, not an alias: same workload, different machine
    behavior — and the difference is the network cache's contribution."""
    monkeypatch.setenv("NUMACHINE_SCHED", "heap")
    surfaces = {}
    for proto in ("numachine", "msi"):
        surfaces[proto] = _surface_for("hotspot|P16|heap", proto)
    numa, msi = surfaces["numachine"], surfaces["msi"]
    assert numa["now"] != msi["now"]
    # NUMAchine's NC serves remote sharing; MSI bypasses it entirely
    assert numa["nc_stats"].get("hits", 0) > 0
    assert msi["nc_stats"].get("hits", 0) == 0
    assert msi["nc_stats"].get("caching_hits", 0) == 0
    assert msi["nc_stats"].get("migration_hits", 0) == 0
    # under MSI the hot line's owner really is tracked exactly: interventions
    # bounce off the precise owner instead of the NC absorbing the traffic
    assert msi["memory_stats"].get("false_remote_bounces", 0) >= 0
    assert numa["now"] < msi["now"], (
        "losing NC combining/migration/caching should cost time on the "
        "sharing-heavy hot-spot workload"
    )


def test_checker_uses_protocol_policy():
    cfg = MachineConfig.small(stations_per_ring=2, rings=1, cpus=2)
    cfg.protocol = "msi"
    m = Machine(cfg)
    checker = m.attach_verifier(CoherenceChecker())
    assert checker._policy is get_protocol("msi")
    HotSpot(words=8, ops=10).run(m, nprocs=4)
    # MSI's per-protocol rules actually ran, not numachine's
    assert checker.checks.get("full-map-coverage", 0) > 0
    assert checker.checks.get("proc-mask-coverage", 0) == 0
