"""Quick cross-backend bit-identity check (development aid).

Runs hotspot and LU on small + prototype machines under both backends and
compares the full machine fingerprint.  Exits nonzero on any mismatch.
"""

import sys

from repro.system.config import MachineConfig
from repro.system.machine import Machine
from repro.workloads.lu import LUContiguous
from repro.workloads.synthetic import HotSpot


def fingerprint(machine):
    return (
        machine.engine.events_run,
        machine.engine.now,
        machine.nc_stats(),
        machine.memory_stats(),
        machine.utilizations(),
        machine.ring_interface_delays(),
    )


def run(backend, wl_factory, cfg_factory, nprocs):
    m = Machine(cfg_factory(), backend=backend)
    wl_factory().run(m, nprocs=nprocs)
    return fingerprint(m), m.backend


def main():
    cases = [
        ("small", lambda: MachineConfig.small(stations_per_ring=2, rings=2, cpus=2), 8),
        ("prototype", MachineConfig.prototype, 16),
    ]
    workloads = [
        ("hotspot", lambda: HotSpot(words=16, ops=60)),
        ("lu", lambda: LUContiguous(n=16, block=4)),
    ]
    failed = False
    for cname, cfg, nprocs in cases:
        for wname, wl in workloads:
            a, _ = run("interp", wl, cfg, nprocs)
            b, active = run("elab", wl, cfg, nprocs)
            ok = a == b
            failed |= not ok
            print(f"{cname:10s} {wname:8s} backend={active:6s} "
                  f"{'MATCH' if ok else 'MISMATCH'}")
            if not ok:
                labels = ["events", "now", "nc", "mem", "util", "delays"]
                for lbl, x, y in zip(labels, a, b):
                    if x != y:
                        print(f"  {lbl}:")
                        print(f"    interp: {x}")
                        print(f"    elab:   {y}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
