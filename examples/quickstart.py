#!/usr/bin/env python3
"""Quickstart: build a NUMAchine, run a small parallel program, read stats.

Builds the 64-processor prototype geometry (4 stations x 4 rings, 4 CPUs
per station), runs a producer/consumer reduction across all 16 stations,
and prints the measurements the machine's monitoring hardware exposes.

Run:  python examples/quickstart.py
"""

from repro import AtomicRMW, Barrier, Compute, Machine, MachineConfig, Read, Write


def main() -> None:
    config = MachineConfig.prototype()
    machine = Machine(config)
    # two CPUs on each of the 16 stations -> station pairs share their
    # network cache, so the migration effect is visible in the stats
    cpus = tuple(
        s * config.cpus_per_station + i
        for s in range(config.num_stations)
        for i in range(2)
    )

    # A shared array, pages placed round-robin across all stations, plus a
    # shared result accumulator on station 0.
    n = 512
    data = machine.allocate(n * 8, placement="round_robin", name="data")
    total = machine.allocate(8, placement="local:0", name="total")

    def worker(tid: int):
        # phase 1: each worker fills a slice
        lo = tid * n // len(cpus)
        hi = (tid + 1) * n // len(cpus)
        for i in range(lo, hi):
            yield Write(data.addr(i * 8), i)
        yield Barrier(0, cpus)
        # phase 2: each worker sums a *different* slice (all-remote reads);
        # station pairs pull the same slice, so the second reader hits the
        # line its neighbour's miss already brought into the network cache
        shift = ((tid // 2) * 2 + 2) % len(cpus)
        lo = shift * n // len(cpus)
        hi = (shift + 2) * n // len(cpus)
        acc = 0
        for i in range(lo, hi):
            v = yield Read(data.addr(i * 8))
            acc += v
            yield Compute(2)
        # phase 3: atomic reduction into the shared total
        yield AtomicRMW(total.addr(0), lambda old, a=acc: old + a)
        yield Barrier(1, cpus)
        if tid == 0:
            result = yield Read(total.addr(0))
            # every element is read by exactly two workers
            expected = n * (n - 1)
            assert result == expected, f"bad sum: {result} != {expected}"

    programs = {cpu: worker(tid) for tid, cpu in enumerate(cpus)}
    result = machine.run(programs)

    print(f"machine : {config.num_cpus} CPUs, {config.num_stations} stations, "
          f"{config.geometry.levels} geometry")
    print(f"ran     : {result.events} events, "
          f"parallel time {machine.parallel_time_ns(result) / 1000:.1f} us")
    hit = machine.nc_hit_rate()
    print(f"network cache hit rate: {hit['total']:.1%} "
          f"(migration {hit['migration']:.1%}, caching {hit['caching']:.1%})")
    print(f"combining rate        : {machine.nc_combining_rate():.1%}")
    util = machine.utilizations()
    print("utilization           : "
          + ", ".join(f"{k} {v:.1%}" for k, v in util.items()))
    delays = machine.ring_interface_delays()
    print("ring interface delays : "
          + ", ".join(f"{k} {v:.1f} cyc" for k, v in delays.items()))


if __name__ == "__main__":
    main()
