#!/usr/bin/env python3
"""Parallel speedup of a SPLASH-2-style kernel on NUMAchine (cf. Fig. 13).

Runs one suite workload at several processor counts and prints the speedup
curve, the way the paper's evaluation measures the parallel section.

Run:  python examples/splash_speedup.py [workload] [max_procs]
      (default: fft, up to 16 processors)
"""

import sys

from repro import Machine, MachineConfig
from repro.workloads import SUITE, make


def run_curve(name: str, max_procs: int) -> None:
    entry = SUITE[name]
    print(f"workload: {name}  (paper size: {entry['paper']}, scaled down here)")
    print(f"{'P':>4} {'time (us)':>12} {'speedup':>9} {'nc hit':>8} {'bus':>7}")
    base_time = None
    p = 1
    while p <= max_procs:
        machine = Machine(MachineConfig.prototype())
        workload = make(name, "bench")
        result = workload.run(machine, nprocs=p)
        t = result.parallel_time_ns
        if base_time is None:
            base_time = t
        hit = machine.nc_hit_rate()["total"]
        bus = machine.utilizations()["bus"]
        print(f"{p:>4} {t / 1000:>12.1f} {base_time / t:>9.2f} "
              f"{hit:>8.1%} {bus:>7.1%}")
        p *= 2


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "fft"
    max_procs = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    run_curve(name, max_procs)


if __name__ == "__main__":
    main()
