#!/usr/bin/env python3
"""Hardware/software interaction (paper §3.2).

Demonstrates the low-level control NUMAchine exposes to system software:

1. *Update of shared data* — the eureka pattern: spinners on every station
   watch one word; the writer updates it by multicasting the new line into
   the network caches instead of invalidating, and the demo compares the
   time for every spinner to observe the value both ways.
2. *Coherent block copy* — a memory-to-memory page copy performed by the
   memory modules, completion signalled by interrupt.
3. *In-cache zeroing* — a page zero-filled by creating dirty lines directly
   in the secondary cache, never reading the DRAM it overwrites.
4. *Multicast interrupts* — one packet interrupting a set of processors.

Run:  python examples/software_coherence.py
"""

from repro import Barrier, Machine, MachineConfig, Read, SoftOp, Write
from repro.workloads.synthetic import EurekaSpin


def eureka_comparison() -> None:
    print("-- update of shared data (eureka) --")
    for use_update in (False, True):
        machine = Machine(MachineConfig.small(stations_per_ring=2, rings=2, cpus=2))
        workload = EurekaSpin(announcements=8, use_update=use_update)
        result = workload.run(machine)
        label = "multicast update" if use_update else "invalidate + refetch"
        print(f"  {label:<22}: {result.parallel_time_ns / 1000:9.1f} us, "
              f"invalidations {machine.memory_stats().get('invalidates_sent', 0)}")


def block_copy_demo() -> None:
    print("-- coherent memory-to-memory block copy --")
    config = MachineConfig.small()
    machine = Machine(config)
    nlines = 16
    src = machine.allocate(nlines * config.line_bytes, placement="local:0")
    dst = machine.allocate(nlines * config.line_bytes, placement="local:1")

    def program():
        # dirty some source lines in the cache first (the copy must collect
        # them), then fire the block copy and wait for the interrupt
        for i in range(nlines):
            yield Write(src.addr(i * config.line_bytes), 1000 + i)
        yield SoftOp("block_copy", {
            "src": src.addr(0), "dst": dst.addr(0), "nlines": nlines,
        })
        for i in range(nlines):
            v = yield Read(dst.addr(i * config.line_bytes))
            assert v == 1000 + i, (i, v)

    result = machine.run({0: program()})
    print(f"  copied {nlines} lines in {result.time_ns / 1000:.1f} us "
          f"(completion by interrupt)")


def zero_page_demo() -> None:
    print("-- in-cache page zeroing --")
    config = MachineConfig.small()
    machine = Machine(config)
    page = machine.allocate(config.page_bytes, placement="local:0")
    nlines = config.page_bytes // config.line_bytes

    def program():
        # dirty the page with garbage, then zero it without reading memory
        for i in range(nlines):
            yield Write(page.addr(i * config.line_bytes), 0xDEAD)
        yield SoftOp("zero_page", {"base": page.addr(0), "nlines": nlines})
        for i in range(nlines):
            v = yield Read(page.addr(i * config.line_bytes))
            assert v == 0, (i, v)

    result = machine.run({0: program()})
    print(f"  zeroed {nlines} lines in {result.time_ns / 1000:.1f} us")


def multicast_interrupt_demo() -> None:
    print("-- multicast interrupts --")
    config = MachineConfig.small()
    machine = Machine(config)
    targets = [1, 3, 5]

    def master():
        yield SoftOp("multicast_interrupt", {"cpus": targets, "bits": 0b100})
        yield Barrier(0, tuple([0] + targets))

    def listener(cpu):
        def gen():
            got = yield SoftOp("wait_interrupt", {})
            assert got == 0b100, got
            yield Barrier(0, tuple([0] + targets))
        return gen()

    programs = {0: master()}
    for t in targets:
        programs[t] = listener(t)
    machine.run(programs)
    print(f"  one packet interrupted CPUs {targets}")


def main() -> None:
    eureka_comparison()
    block_copy_demo()
    zero_page_demo()
    multicast_interrupt_demo()


if __name__ == "__main__":
    main()
