#!/usr/bin/env python3
"""Performance monitoring hardware (paper §3.3) + the observability layer.

Attaches the non-intrusive monitor and the ``repro.obs`` observability
layer, runs a workload with deliberate false sharing, and shows how the
instrumentation exposes the problem from three angles:

* the cache-coherence histogram table (§3.3.3): a line ping-ponging
  between writers shows up as a high invalidation count and LI/GI states
  under write requests;
* the phase-identifier register: attributes the traffic to the offending
  code region;
* transaction traces and probes: the per-segment latency breakdown shows
  where the extra nanoseconds go, and the FIFO/bus probes show the
  resulting queueing.

Artifacts (written to ``--out-dir``, default ``out/``, viewable in
Perfetto / ``python -m repro.obs.report``):

* ``numachine_trace.json`` — Chrome trace-event timeline of every
  transaction, with probe counter tracks
* ``numachine_obs.json``   — unified metrics snapshot

Run:  python examples/monitoring.py [--out-dir out] [--no-monitor]

``--no-monitor`` drops the §3.3 monitor and keeps only the observability
layer: with ``NUMACHINE_BACKEND=elab`` (or ``auto``) the run then executes
on the *instrumented* specialized core — the monitor is the one hook here
that forces the interpreter (see :mod:`repro.elab.backend`).
"""

import argparse
from pathlib import Path

from repro import (
    Barrier, Compute, Machine, MachineConfig, Observability, Phase, Read,
    Write,
)
from repro.monitor import Monitor
from repro.obs import write_snapshot
from repro.obs.report import render_text


def main(argv=None) -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out-dir", type=Path, default=Path("out"),
                    help="directory for trace/snapshot artifacts (default out/)")
    ap.add_argument("--no-monitor", action="store_true",
                    help="skip the §3.3 monitor so an elab-backend run can "
                    "stay on the instrumented specialized core")
    args = ap.parse_args(argv)
    config = MachineConfig.small(stations_per_ring=2, rings=2, cpus=2)
    machine = Machine(config)
    monitor = None
    if not args.no_monitor:
        monitor = Monitor()
        machine.attach_monitor(monitor)
    obs = Observability(probe_period_ns=500.0).attach(machine)

    cpus = tuple(range(config.num_cpus))
    # counters[i] for thread i -- but packed into ONE cache line: false sharing
    packed = machine.allocate(len(cpus) * 8, placement="local:0", name="packed")
    # padded version: one counter per line
    padded = machine.allocate(len(cpus) * config.line_bytes, placement="local:0",
                              name="padded")

    rounds = 30

    def worker(tid: int):
        yield Phase(1)  # phase 1: false-sharing counters
        for r in range(rounds):
            v = yield Read(packed.addr(tid * 8))
            yield Write(packed.addr(tid * 8), v + 1)
            yield Compute(20)
        yield Barrier(0, cpus)
        yield Phase(2)  # phase 2: padded counters
        for r in range(rounds):
            v = yield Read(padded.addr(tid * config.line_bytes))
            yield Write(padded.addr(tid * config.line_bytes), v + 1)
            yield Compute(20)
        yield Barrier(1, cpus)

    result = machine.run({cpu: worker(tid) for tid, cpu in enumerate(cpus)})
    print(f"ran in {result.time_ns / 1000:.1f} us "
          f"(backend={machine.backend}"
          + (f", variant={machine.backend_variant}" if machine.backend_variant
             else "") + ")\n")

    if monitor is not None:
        print("memory coherence histogram (state x transaction type):")
        print(monitor.coherence_histogram.render())
        print()
        print("traffic by phase identifier (phase 1 = packed/false-sharing,"
              " phase 2 = padded):")
        print(monitor.phase_table.render())
        print()
        p1 = monitor.phase_table.total(col=1)
        p2 = monitor.phase_table.total(col=2)
        print(f"memory transactions: phase 1 (false sharing) = {p1}, "
              f"phase 2 (padded) = {p2}")
        print(f"-> the packed layout generated {p1 / max(1, p2):.1f}x the "
              "coherence traffic for identical work")
        print()
        print("last 5 trace-memory entries:", monitor.trace.recent(5))

    # ------------------------------------------------------------------
    # observability layer: traces, probes, unified snapshot
    # ------------------------------------------------------------------
    print()
    print("=" * 70)
    print("observability snapshot (python -m repro.obs.report renders this"
          " from the JSON):")
    print()
    snap = machine.obs_snapshot()
    print(render_text(snap, probe_limit=8))

    args.out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = args.out_dir / "numachine_trace.json"
    snap_path = args.out_dir / "numachine_obs.json"
    obs.write_trace(str(trace_path))
    write_snapshot(str(snap_path), snap)
    print()
    print(f"wrote {trace_path}  (open in https://ui.perfetto.dev)")
    print(f"wrote {snap_path}    (python -m repro.obs.report {snap_path})")
    tr = obs.tracer.summary()
    print(f"traced {tr['finished']} transactions"
          f" ({obs.probes.samples} probe samples)")


if __name__ == "__main__":
    main()
